// Package serve turns the batch evaluation CLIs into a long-running,
// multi-tenant campaign service: an HTTP/JSON API that accepts grid and
// chaos jobs, executes them on the shared campaign engine behind a
// content-addressed result cache (the cellstore journal — the simulator's
// strict determinism makes a cached cell provably exact, so every repeated
// (config, workload, policy, seed) cell across all tenants is free), a fair
// FIFO-per-tenant queue with a bounded number of concurrent campaigns,
// per-job progress streamed as NDJSON or SSE, and in-process campaign
// sharding under the same merge-by-index determinism contract the -j and
// -shard flags guarantee: a job run as N shards merges to a report
// byte-identical to the unsharded run (modulo wall_seconds).
package serve

import (
	"fmt"
	"sort"
	"strings"

	"redsoc/internal/harness"
	"redsoc/internal/ooo"
)

// JobSpec is a submitted evaluation job. The zero spec is the quick grid.
type JobSpec struct {
	// Type is "grid" (default) or "chaos".
	Type string `json:"type,omitempty"`
	// Scale is "quick" (default) or "full"; grid jobs only.
	Scale string `json:"scale,omitempty"`
	// Sweep enables the Sec. VI-C threshold design sweep (grid jobs).
	Sweep bool `json:"sweep,omitempty"`
	// Benchmarks restricts the workload set by name (empty = the full suite
	// for grid jobs, one benchmark per suite for chaos jobs).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Cores restricts the simulated cores ("big", "medium", "small"; empty =
	// all three for grid jobs). Chaos jobs use the first entry (default
	// "medium").
	Cores []string `json:"cores,omitempty"`
	// Workers bounds the campaign worker pool (0 = all CPUs). Results are
	// bit-identical at any worker count.
	Workers int `json:"workers,omitempty"`
	// Shards splits the job into that many cooperating in-process shards
	// sharing the cache, followed by a merge pass that reassembles the
	// report by index; 0 or 1 runs unsharded. The merged report is
	// byte-identical to the unsharded one (modulo wall_seconds).
	Shards int `json:"shards,omitempty"`

	// Seeds and Rates configure chaos jobs (defaults: 3 seeds, rates
	// 0.01 and 0.1 — the CI smoke configuration).
	Seeds int       `json:"seeds,omitempty"`
	Rates []float64 `json:"rates,omitempty"`
}

// job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// resolved is a validated JobSpec with every name resolved to its object —
// resolution happens at submit time so a bad spec is a 400, never a failed
// job discovered minutes later.
type resolved struct {
	spec       JobSpec
	scale      harness.Scale
	benchmarks []harness.Benchmark
	cores      []ooo.Config
	cells      int // planned journal-keyed units of work
}

// resolve validates and resolves a spec.
func resolve(spec JobSpec) (*resolved, error) {
	r := &resolved{spec: spec}
	switch spec.Type {
	case "", "grid":
		r.spec.Type = "grid"
	case "chaos":
		r.spec.Type = "chaos"
	default:
		return nil, fmt.Errorf("serve: unknown job type %q (want grid or chaos)", spec.Type)
	}
	switch spec.Scale {
	case "", "quick":
		r.spec.Scale = "quick"
		r.scale = harness.Quick
	case "full":
		r.scale = harness.Full
	default:
		return nil, fmt.Errorf("serve: unknown scale %q (want quick or full)", spec.Scale)
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("serve: workers = %d, want >= 0", spec.Workers)
	}
	if spec.Shards < 0 || spec.Shards > 64 {
		return nil, fmt.Errorf("serve: shards = %d, want 0..64", spec.Shards)
	}

	all := harness.Benchmarks(r.scale)
	if r.spec.Type == "chaos" && len(spec.Benchmarks) == 0 {
		r.benchmarks = chaosPick(all)
	} else if len(spec.Benchmarks) == 0 {
		r.benchmarks = all
	} else {
		for _, name := range spec.Benchmarks {
			b, err := harness.FindBenchmark(all, name)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			r.benchmarks = append(r.benchmarks, b)
		}
	}

	coreNames := spec.Cores
	if len(coreNames) == 0 {
		if r.spec.Type == "chaos" {
			coreNames = []string{"medium"}
		} else {
			for _, c := range harness.Cores() {
				coreNames = append(coreNames, strings.ToLower(c.Name))
			}
		}
	}
	for _, name := range coreNames {
		cfg, err := coreByName(name)
		if err != nil {
			return nil, err
		}
		r.cores = append(r.cores, cfg)
	}

	if r.spec.Type == "chaos" {
		if spec.Shards >= 2 {
			return nil, fmt.Errorf("serve: sharded chaos jobs are not supported in-service; shard across processes with redsoc-chaos -shard i/n against a shared journal")
		}
		if r.spec.Seeds == 0 {
			r.spec.Seeds = 3
		}
		if r.spec.Seeds < 1 {
			return nil, fmt.Errorf("serve: seeds = %d, want >= 1", r.spec.Seeds)
		}
		if len(r.spec.Rates) == 0 {
			r.spec.Rates = []float64{0.01, 0.1}
		}
		for _, rate := range r.spec.Rates {
			if rate < 0 || rate > 1 {
				return nil, fmt.Errorf("serve: fault rate %g out of [0, 1]", rate)
			}
		}
		r.cells = len(r.benchmarks) * len(r.spec.Rates) * r.spec.Seeds
		return r, nil
	}

	r.cells = len(r.benchmarks) * len(r.cores)
	if r.spec.Sweep {
		classes := map[harness.Class]bool{}
		for _, b := range r.benchmarks {
			classes[b.Class] = true
		}
		r.cells += len(classes) * len(r.cores) * len(harness.ThresholdCandidates)
	}
	return r, nil
}

// coreByName maps a core name to its Table I configuration.
func coreByName(name string) (ooo.Config, error) {
	switch strings.ToLower(name) {
	case "big":
		return ooo.BigConfig(), nil
	case "medium":
		return ooo.MediumConfig(), nil
	case "small":
		return ooo.SmallConfig(), nil
	}
	return ooo.Config{}, fmt.Errorf("serve: unknown core %q (want big, medium or small)", name)
}

// chaosPick keeps the first benchmark of each suite — the chaos default,
// matching redsoc-chaos -quick.
func chaosPick(bs []harness.Benchmark) []harness.Benchmark {
	var out []harness.Benchmark
	seen := map[harness.Class]bool{}
	for _, b := range bs {
		if !seen[b.Class] {
			seen[b.Class] = true
			out = append(out, b)
		}
	}
	return out
}

// Status is the externally visible state of one job. Mutable fields are
// snapshotted under the job's lock; the report itself is served by its own
// endpoint so status polls stay small.
type Status struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	State  string  `json:"state"`
	Spec   JobSpec `json:"spec"`
	Error  string  `json:"error,omitempty"`
	// CellsTotal is the planned number of journal-keyed units of work
	// (sweep totals + grid cells, or chaos cells); CellsDone counts
	// completions, and CacheHits/CacheMisses split them by whether the
	// content-addressed cache served the unit or it was simulated.
	CellsTotal  int `json:"cells_total"`
	CellsDone   int `json:"cells_done"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// MergeMisses counts cells the shard-merge pass had to simulate; any
	// nonzero value means a shard under-delivered (always 0 for unsharded
	// jobs and for healthy sharded ones).
	MergeMisses int `json:"merge_misses"`
	// WallSeconds is the job's execution time (0 until it finishes; not
	// deterministic and excluded from every equality contract).
	WallSeconds float64 `json:"wall_seconds"`
}

// sortedTenants returns m's keys in sorted order — map iteration must never
// leak into an API response.
func sortedTenants(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for t := range m { //lint:allow simdeterminism keys are sorted before any consumer sees them
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
