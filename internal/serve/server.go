package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"redsoc/internal/cellstore"
)

// Config configures a Server.
type Config struct {
	// Journal is the content-addressed result cache directory (required).
	// Every job reads and writes it: a cell any tenant ever computed is
	// served from here, verified, for free.
	Journal string
	// MaxConcurrent bounds the campaigns running at once (default 2). Queued
	// jobs wait their fair, per-tenant turn.
	MaxConcurrent int
	// Workers caps the per-campaign worker pool a job may request; 0 means
	// no cap. Worker counts never change results, only wall time.
	Workers int
}

// Server is the campaign service: a job store, the fair queue, the shared
// result cache, and the runner goroutines that execute campaigns.
type Server struct {
	cfg    Config
	store  *cellstore.Store
	q      *queue
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	running atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // job IDs in submission order
	nseq  int
}

// job is the server-side record of one submitted job.
type job struct {
	id     string
	tenant string
	res    *resolved
	log    *eventLog

	mu          sync.Mutex
	state       string
	errMsg      string
	cellsDone   int
	hits        int
	misses      int
	mergeMisses int
	wallSeconds float64
	report      []byte
}

// New opens the cache and starts the runner pool.
func New(cfg Config) (*Server, error) {
	if cfg.Journal == "" {
		return nil, fmt.Errorf("serve: Config.Journal is required — the cache is the service")
	}
	store, err := cellstore.Open(cfg.Journal)
	if err != nil {
		return nil, err
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		store:  store,
		q:      newQueue(),
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*job{},
	}
	s.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go s.runner()
	}
	return s, nil
}

// Close drains the service: queued jobs are failed, running campaigns are
// cancelled, runners are joined, and the cache is flushed shut.
func (s *Server) Close() error {
	s.q.close()
	for _, j := range s.q.drain() {
		j.fail("server shut down before the job ran", 0)
		j.log.close()
	}
	s.cancel()
	s.wg.Wait()
	return s.store.Close()
}

// runner executes queued jobs until the queue closes.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.running.Add(1)
		s.execute(j)
		s.running.Add(-1)
	}
}

// Submit validates, registers and enqueues a job.
func (s *Server) Submit(tenant string, spec JobSpec) (Status, error) {
	if tenant == "" {
		tenant = "anonymous"
	}
	res, err := resolve(spec)
	if err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	s.nseq++
	j := &job{
		id:     fmt.Sprintf("j%06d", s.nseq),
		tenant: tenant,
		res:    res,
		log:    newEventLog(),
		state:  StateQueued,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	j.log.append(Event{Type: "state", Text: StateQueued})
	s.q.push(j)
	return j.status(), nil
}

// jobByID returns a registered job or nil.
func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// status snapshots a job for the API.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state,
		Spec:        j.res.spec,
		Error:       j.errMsg,
		CellsTotal:  j.res.cells,
		CellsDone:   j.cellsDone,
		CacheHits:   j.hits,
		CacheMisses: j.misses,
		MergeMisses: j.mergeMisses,
		WallSeconds: j.wallSeconds,
	}
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
	j.log.append(Event{Type: "state", Text: state})
}

func (j *job) fail(msg string, wallSeconds float64) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = msg
	j.wallSeconds = wallSeconds
	j.mu.Unlock()
	j.log.append(Event{Type: "error", Text: msg})
}

func (j *job) finish(report []byte, wallSeconds float64) {
	j.mu.Lock()
	j.state = StateDone
	j.report = report
	j.wallSeconds = wallSeconds
	j.mu.Unlock()
	j.log.append(Event{Type: "done", Text: "report ready"})
}

// Handler returns the HTTP API.
//
//	POST /v1/jobs              submit a JobSpec (tenant from X-Tenant)
//	GET  /v1/jobs              list job statuses in submission order
//	GET  /v1/jobs/{id}         one job's status
//	GET  /v1/jobs/{id}/report  the finished job's report (byte-identical to
//	                           the batch CLI's, modulo wall_seconds)
//	GET  /v1/jobs/{id}/events  progress stream (NDJSON; SSE with ?sse=1 or
//	                           Accept: text/event-stream; resume with ?from=N)
//	GET  /v1/stats             queue depth, running count, cache counters
//	GET  /healthz              liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	st, err := s.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.mu.Lock()
	state, report := j.state, j.report
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(report)
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed; see its status")
	default:
		writeError(w, http.StatusConflict, "job not finished; poll its status or follow its events")
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from offset")
			return
		}
		from = n
	}
	flusher, _ := w.(http.Flusher)
	// A disconnecting client wakes the blocked follow so the handler (and
	// its goroutine) end promptly instead of at the job's next event.
	stop := context.AfterFunc(r.Context(), j.log.wake)
	defer stop()
	cancelled := func() bool { return r.Context().Err() != nil }
	for {
		evs, ok := j.log.follow(from, cancelled)
		if !ok {
			return
		}
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", data)
			} else {
				w.Write(data)
				w.Write([]byte("\n"))
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	// Queue lists pending jobs per tenant, tenants sorted by name.
	Queue []TenantDepth `json:"queue"`
	// Running is the number of campaigns executing right now; MaxConcurrent
	// is its configured bound.
	Running       int `json:"running"`
	MaxConcurrent int `json:"max_concurrent"`
	// Jobs counts registered jobs by state, keys sorted.
	Jobs []StateCount `json:"jobs"`
	// Cache is the shared content-addressed store's counters, service-wide.
	Cache cellstore.Stats `json:"cache"`
}

// TenantDepth is one tenant's pending-job count.
type TenantDepth struct {
	Tenant  string `json:"tenant"`
	Pending int    `json:"pending"`
}

// StateCount is one job-state bucket.
type StateCount struct {
	State string `json:"state"`
	Count int    `json:"count"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	depth := s.q.depth()
	resp := StatsResponse{
		Running:       int(s.running.Load()),
		MaxConcurrent: s.cfg.MaxConcurrent,
		Cache:         s.store.Stats(),
		Queue:         []TenantDepth{},
		Jobs:          []StateCount{},
	}
	for _, tenant := range sortedTenants(depth) {
		resp.Queue = append(resp.Queue, TenantDepth{Tenant: tenant, Pending: depth[tenant]})
	}
	s.mu.Lock()
	byState := map[string]int{}
	for _, id := range s.order {
		st := s.jobs[id]
		st.mu.Lock()
		byState[st.state]++
		st.mu.Unlock()
	}
	s.mu.Unlock()
	for _, state := range sortedTenants(byState) {
		resp.Jobs = append(resp.Jobs, StateCount{State: state, Count: byState[state]})
	}
	writeJSON(w, http.StatusOK, resp)
}
