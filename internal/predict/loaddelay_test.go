package predict

import "testing"

func TestLoadDelayTrackerRejectsBadSizes(t *testing.T) {
	for _, entries := range []int{0, -1, 3, 6, 511} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLoadDelayTracker(%d) must panic", entries)
				}
			}()
			NewLoadDelayTracker(entries)
		}()
	}
	NewLoadDelayTracker(1)
	NewLoadDelayTracker(DefaultLoadDelayEntries)
}

func TestLoadDelayColdPredictsCallerDefault(t *testing.T) {
	tr := NewLoadDelayTracker(64)
	if got := tr.Predict(0x3000, 2); got != 2 {
		t.Fatalf("cold Predict = %d, want the caller's L1 guess 2", got)
	}
	// A different cold default on a different cold entry is honored too —
	// the table stores observations, not policy.
	if got := tr.Predict(0x3004, 7); got != 7 {
		t.Fatalf("cold Predict = %d, want 7", got)
	}
}

func TestLoadDelayTracksLastObservation(t *testing.T) {
	tr := NewLoadDelayTracker(64)
	const pc = uint64(0x3000)
	tr.Update(pc, 2, 90) // cold guess was an L1 hit; DRAM answered
	if got := tr.Predict(pc, 2); got != 90 {
		t.Fatalf("after a DRAM observation Predict = %d, want 90", got)
	}
	tr.Update(pc, 90, 2) // line now resident; L1 answered
	if got := tr.Predict(pc, 2); got != 2 {
		t.Fatalf("tracker must follow the latest observation, got %d", got)
	}
	st := tr.Stats()
	if st.Lookups != 2 || st.Mispredictions != 2 {
		t.Fatalf("stats %+v, want 2 lookups / 2 mispredictions", st)
	}
}

func TestLoadDelayScoresOnlyWrongPredictions(t *testing.T) {
	tr := NewLoadDelayTracker(64)
	const pc = uint64(0x40)
	tr.Update(pc, 12, 12)
	tr.Update(pc, 12, 12)
	tr.Update(pc, 12, 90)
	st := tr.Stats()
	if st.Mispredictions != 1 {
		t.Fatalf("Mispredictions = %d, want 1", st.Mispredictions)
	}
	if st.Lookups != 0 {
		t.Fatalf("Update must not count lookups, got %d", st.Lookups)
	}
}

func TestLoadDelayHitRate(t *testing.T) {
	if got := (LoadDelayStats{}).HitRate(); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
	if got := (LoadDelayStats{Lookups: 8, Mispredictions: 2}).HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
}

func TestLoadDelayIndexStaysInTable(t *testing.T) {
	tr := NewLoadDelayTracker(8)
	// Sweep PCs far beyond the table: every access must stay in bounds and
	// aliased PCs must share an entry deterministically.
	for pc := uint64(0); pc < 1<<16; pc += 4 {
		tr.Update(pc, 2, 2)
	}
	a, b := uint64(0x1000), uint64(0x1000)+8*4 // 8-entry table: pc>>2 aliases mod 8
	tr.Update(a, 2, 33)
	if got := tr.Predict(b, 2); got != 33 {
		t.Fatalf("aliased PCs %#x/%#x must share an entry, got %d", a, b, got)
	}
}
