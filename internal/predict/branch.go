package predict

// BranchPredictor is a gshare predictor: a table of 2-bit saturating
// counters indexed by PC xor global history. The core uses it to decide, at
// dispatch, whether a (pre-resolved) trace branch would have redirected the
// front end; mispredicted branches stall dispatch until they resolve, which
// puts branch-feeding dependency chains on the critical path — exactly where
// slack recycling helps.
type BranchPredictor struct {
	counters []uint8
	history  uint64
	histBits uint
	mask     uint64

	lookups uint64
	wrong   uint64
}

// DefaultBranchEntries and DefaultHistoryBits size the predictor like a
// modest gshare (4K × 2-bit counters, 10-bit history).
const (
	DefaultBranchEntries = 4096
	DefaultHistoryBits   = 10
)

// NewBranchPredictor builds a gshare predictor; entries must be a power of
// two.
func NewBranchPredictor(entries int, historyBits uint) *BranchPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: branch predictor entries must be a positive power of two")
	}
	c := make([]uint8, entries)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{
		counters: c,
		histBits: historyBits,
		mask:     uint64(entries - 1),
	}
}

func (p *BranchPredictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.mask
}

// Predict returns the predicted direction without training (a pure query).
func (p *BranchPredictor) Predict(pc uint64) bool {
	return p.counters[p.index(pc)] >= 2
}

// Update predicts, trains with the actual direction, reports whether the
// prediction was wrong, and shifts the history. This is the per-branch path
// the core uses, so it is what counts as a lookup.
func (p *BranchPredictor) Update(pc uint64, taken bool) (mispredicted bool) {
	p.lookups++
	i := p.index(pc)
	pred := p.counters[i] >= 2
	if pred != taken {
		p.wrong++
		mispredicted = true
	}
	if taken {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else if p.counters[i] > 0 {
		p.counters[i]--
	}
	p.history = (p.history<<1 | b2u(taken)) & (1<<p.histBits - 1)
	return mispredicted
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BranchStats reports accuracy counters.
type BranchStats struct {
	Lookups, Mispredictions uint64
}

// Stats returns the accumulated counters.
func (p *BranchPredictor) Stats() BranchStats {
	return BranchStats{Lookups: p.lookups, Mispredictions: p.wrong}
}

// MispredictionRate returns mispredictions per branch.
func (s BranchStats) MispredictionRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredictions) / float64(s.Lookups)
}
