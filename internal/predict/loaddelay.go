package predict

// LoadDelayTracker is the real-time load-delay table behind the `loaddelay`
// scheduling policy (Diavastos & Carlson): a PC-indexed, direct-mapped record
// of the delay each static load most recently exhibited, fed by the cache
// hierarchy as loads resolve. The scheduler broadcasts a completion instant
// built from the tracked delay instead of a static worst-case latency;
// consumers that issue against an under-tracked delay are caught by the
// ordinary Razor-style operand detectors and selectively reissued, so the
// tracker can never corrupt architectural state — only move timing.
type LoadDelayTracker struct {
	// delays holds the last observed latency per entry, in cycles; 0 marks a
	// cold entry (real latencies are >= 1).
	delays []int32
	mask   uint64

	lookups uint64
	wrong   uint64
}

// DefaultLoadDelayEntries sizes the tracker: 512 entries × ~7 bits of
// latency is well under the last-arrival table's budget.
const DefaultLoadDelayEntries = 512

// NewLoadDelayTracker builds a tracker with a power-of-two table size.
func NewLoadDelayTracker(entries int) *LoadDelayTracker {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: load-delay tracker entries must be a positive power of two")
	}
	return &LoadDelayTracker{
		delays: make([]int32, entries),
		mask:   uint64(entries - 1),
	}
}

func (t *LoadDelayTracker) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 11)) & t.mask
}

// Predict returns the delay (cycles) tracked for the load at pc, or cold for
// a load this entry has not observed yet. Callers pass the optimistic common
// case (an L1 hit) as cold — a wrong first guess is recovered like any other
// under-tracked delay.
//
//redsoc:hotpath
func (t *LoadDelayTracker) Predict(pc uint64, cold int) int {
	t.lookups++
	if d := t.delays[t.index(pc)]; d > 0 {
		return int(d)
	}
	return cold
}

// Update records the load's observed delay and scores the prior prediction.
//
//redsoc:hotpath
func (t *LoadDelayTracker) Update(pc uint64, predicted, actual int) {
	if predicted != actual {
		t.wrong++
	}
	t.delays[t.index(pc)] = int32(actual)
}

// LoadDelayStats reports accuracy counters.
type LoadDelayStats struct {
	Lookups, Mispredictions uint64
}

// Stats returns the accumulated counters.
func (t *LoadDelayTracker) Stats() LoadDelayStats {
	return LoadDelayStats{Lookups: t.lookups, Mispredictions: t.wrong}
}

// HitRate returns the fraction of lookups whose tracked delay matched the
// observed one.
func (s LoadDelayStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Lookups-s.Mispredictions) / float64(s.Lookups)
}
