package predict

// LastArrivalPredictor predicts which of an instruction's source operands
// arrives last (Ernst & Austin tag elimination, used by the paper's
// Operational RSE design, Sec. IV-C). The table is PC-indexed with one bit
// per entry: whether the *second* source operand (rather than the first) is
// the last to arrive. Single-source operations trivially predict source 0.
type LastArrivalPredictor struct {
	secondLast []bool
	mask       uint64

	lookups uint64
	wrong   uint64
}

// DefaultLastArrivalEntries is the paper's table size (Sec. VI-B): 1K
// entries, 1 bit each.
const DefaultLastArrivalEntries = 1024

// NewLastArrivalPredictor builds a predictor with a power-of-two table size.
func NewLastArrivalPredictor(entries int) *LastArrivalPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: last-arrival predictor entries must be a positive power of two")
	}
	return &LastArrivalPredictor{
		secondLast: make([]bool, entries),
		mask:       uint64(entries - 1),
	}
}

func (p *LastArrivalPredictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 12)) & p.mask
}

// Predict returns the index (0 or 1) of the source operand predicted to
// arrive last.
func (p *LastArrivalPredictor) Predict(pc uint64) int {
	p.lookups++
	if p.secondLast[p.index(pc)] {
		return 1
	}
	return 0
}

// Update trains the predictor with the operand that actually arrived last
// and records whether the earlier prediction was wrong.
func (p *LastArrivalPredictor) Update(pc uint64, predicted, actual int) {
	if predicted != actual {
		p.wrong++
	}
	p.secondLast[p.index(pc)] = actual == 1
}

// Flip inverts the stored last-arrival bit for pc — the fault-injection
// hook modeling a corrupted table entry. Mispredictions it induces are
// caught by the scheduler's register-read validation like any other.
func (p *LastArrivalPredictor) Flip(pc uint64) {
	i := p.index(pc)
	p.secondLast[i] = !p.secondLast[i]
}

// LastArrivalStats reports accuracy counters.
type LastArrivalStats struct {
	Lookups, Mispredictions uint64
}

// Stats returns the accumulated counters.
func (p *LastArrivalPredictor) Stats() LastArrivalStats {
	return LastArrivalStats{Lookups: p.lookups, Mispredictions: p.wrong}
}

// MispredictionRate returns mispredictions per lookup (the paper's Fig. 12
// reports ~1%, growing with core size).
func (s LastArrivalStats) MispredictionRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredictions) / float64(s.Lookups)
}

// Scoreboard is the small register scoreboard that validates last-arrival
// predictions (Sec. IV-C): a prediction is correct iff the operand predicted
// to NOT arrive last is already available when the instruction reaches
// register read. It tracks readiness of renamed registers by tag.
type Scoreboard struct {
	ready []bool
}

// NewScoreboard sizes the scoreboard for the given number of in-flight tags.
func NewScoreboard(tags int) *Scoreboard {
	return &Scoreboard{ready: make([]bool, tags)}
}

// Reset clears all readiness bits.
func (s *Scoreboard) Reset() {
	for i := range s.ready {
		s.ready[i] = false
	}
}

// SetReady marks a tag's value as produced.
func (s *Scoreboard) SetReady(tag int) { s.ready[tag] = true }

// Clear marks a tag as in flight (allocated to a new instruction).
func (s *Scoreboard) Clear(tag int) { s.ready[tag] = false }

// Ready reports whether the tag's value is available.
func (s *Scoreboard) Ready(tag int) bool { return s.ready[tag] }
