package predict

import (
	"math/rand"
	"testing"

	"redsoc/internal/isa"
)

func TestWidthPredictorWarmsUp(t *testing.T) {
	p := NewWidthPredictor(64, 2)
	pc := uint64(0x1000)
	// Cold: conservative maximum width.
	if got := p.Predict(pc); got != isa.Width64 {
		t.Fatalf("cold prediction = %v, want w64", got)
	}
	// Train with a stable narrow width; it takes one update to store the
	// width plus confMax consecutive confirmations to saturate.
	for i := 0; i < 4; i++ {
		w := p.Predict(pc)
		p.Update(pc, w, isa.Width8)
	}
	if got := p.Predict(pc); got != isa.Width8 {
		t.Fatalf("trained prediction = %v, want w8", got)
	}
}

func TestWidthPredictorResetsOnChange(t *testing.T) {
	p := NewWidthPredictor(64, 2)
	pc := uint64(0x2000)
	for i := 0; i < 4; i++ {
		p.Update(pc, p.Predict(pc), isa.Width8)
	}
	if p.Predict(pc) != isa.Width8 {
		t.Fatal("predictor failed to train")
	}
	// One diverging outcome resets confidence -> conservative again.
	p.Update(pc, p.Predict(pc), isa.Width32)
	if got := p.Predict(pc); got != isa.Width64 {
		t.Fatalf("after reset prediction = %v, want w64", got)
	}
}

func TestWidthPredictorStatsClassification(t *testing.T) {
	p := NewWidthPredictor(64, 1)
	pc := uint64(0x3000)
	p.Update(pc, isa.Width64, isa.Width8)  // conservative
	p.Update(pc, isa.Width8, isa.Width32)  // aggressive
	p.Update(pc, isa.Width16, isa.Width16) // exact
	s := p.Stats()
	if s.Conservative != 1 || s.Aggressive != 1 || s.Exact != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.AggressiveRate(); got != 1.0/3 {
		t.Fatalf("AggressiveRate = %v", got)
	}
}

// The paper's key accuracy claim: on stable-width instruction streams the
// resetting predictor keeps aggressive mispredictions well under 1%.
func TestWidthPredictorAggressiveRateLow(t *testing.T) {
	p := NewWidthPredictor(DefaultWidthEntries, DefaultConfidenceBits)
	rng := rand.New(rand.NewSource(11))
	// 256 static instructions, each with a dominant width and 2% noise.
	domWidth := make([]isa.WidthClass, 256)
	for i := range domWidth {
		domWidth[i] = isa.WidthClass(rng.Intn(4))
	}
	for i := 0; i < 200000; i++ {
		slot := rng.Intn(256)
		pc := uint64(0x4000 + slot*4)
		actual := domWidth[slot]
		if rng.Float64() < 0.02 {
			actual = isa.WidthClass(rng.Intn(4))
		}
		p.Update(pc, p.Predict(pc), actual)
	}
	rate := p.Stats().AggressiveRate()
	if rate > 0.01 {
		t.Fatalf("aggressive rate %.4f exceeds 1%%", rate)
	}
	if rate == 0 {
		t.Fatal("noise must cause some aggressive mispredictions")
	}
}

func TestWidthPredictorStateBytes(t *testing.T) {
	p := NewWidthPredictor(DefaultWidthEntries, DefaultConfidenceBits)
	// Paper: 4K-entry predictor costs ~1.5KB... entries*(2+k) bits.
	want := 4096 * (2 + 2) / 8
	if got := p.StateBytes(); got != want {
		t.Fatalf("StateBytes = %d, want %d", got, want)
	}
}

func TestWidthPredictorValidation(t *testing.T) {
	for _, bad := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWidthPredictor(%d,2) must panic", bad)
				}
			}()
			NewWidthPredictor(bad, 2)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("confidence bits 0 must panic")
			}
		}()
		NewWidthPredictor(64, 0)
	}()
}

func TestLastArrivalPredictorLearns(t *testing.T) {
	p := NewLastArrivalPredictor(64)
	pc := uint64(0x100)
	if p.Predict(pc) != 0 {
		t.Fatal("cold prediction must be operand 0")
	}
	p.Update(pc, 0, 1)
	if p.Predict(pc) != 1 {
		t.Fatal("predictor must learn operand 1")
	}
	p.Update(pc, 1, 0)
	if p.Predict(pc) != 0 {
		t.Fatal("predictor must relearn operand 0")
	}
	s := p.Stats()
	if s.Mispredictions != 2 {
		t.Fatalf("mispredictions = %d, want 2", s.Mispredictions)
	}
}

func TestLastArrivalStableStreamsAccurate(t *testing.T) {
	p := NewLastArrivalPredictor(DefaultLastArrivalEntries)
	rng := rand.New(rand.NewSource(5))
	last := make([]int, 128)
	for i := range last {
		last[i] = rng.Intn(2)
	}
	for i := 0; i < 100000; i++ {
		slot := rng.Intn(128)
		pc := uint64(slot * 4)
		actual := last[slot]
		if rng.Float64() < 0.01 {
			actual = 1 - actual
		}
		p.Update(pc, p.Predict(pc), actual)
	}
	if rate := p.Stats().MispredictionRate(); rate > 0.03 {
		t.Fatalf("misprediction rate %.4f too high for stable streams", rate)
	}
}

func TestScoreboard(t *testing.T) {
	s := NewScoreboard(8)
	if s.Ready(3) {
		t.Fatal("fresh scoreboard must be all not-ready")
	}
	s.SetReady(3)
	if !s.Ready(3) {
		t.Fatal("SetReady lost")
	}
	s.Clear(3)
	if s.Ready(3) {
		t.Fatal("Clear lost")
	}
	s.SetReady(1)
	s.Reset()
	if s.Ready(1) {
		t.Fatal("Reset must clear all")
	}
}

func TestMispredictionRateEmpty(t *testing.T) {
	var s LastArrivalStats
	if s.MispredictionRate() != 0 {
		t.Fatal("empty stats must report 0")
	}
	var w WidthStats
	if w.AggressiveRate() != 0 {
		t.Fatal("empty width stats must report 0")
	}
}

func TestLastArrivalConstructorRejectsBadSizes(t *testing.T) {
	for _, entries := range []int{0, -8, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entries=%d must panic", entries)
				}
			}()
			NewLastArrivalPredictor(entries)
		}()
	}
	// Power-of-two sizes, including the degenerate single-entry table, work.
	if p := NewLastArrivalPredictor(1); p.Predict(0x40) != 0 {
		t.Fatal("single-entry table must cold-predict operand 0")
	}
}

func TestLastArrivalAliasingSharesEntry(t *testing.T) {
	// Two PCs that hash to the same index share the single prediction bit:
	// training one retrains the other (destructive aliasing, the cost of a
	// 1K x 1b table). For a 64-entry table, pc and pc + 64*4 alias.
	p := NewLastArrivalPredictor(64)
	pcA, pcB := uint64(0x4), uint64(0x4+64*4)
	p.Update(pcA, p.Predict(pcA), 1)
	if p.Predict(pcB) != 1 {
		t.Fatal("aliased PC must see its neighbor's training")
	}
	p.Update(pcB, p.Predict(pcB), 0)
	if p.Predict(pcA) != 0 {
		t.Fatal("aliased retraining must overwrite the shared bit")
	}
}

func TestLastArrivalStatsCountEveryLookup(t *testing.T) {
	p := NewLastArrivalPredictor(16)
	for i := 0; i < 5; i++ {
		p.Predict(0x10)
	}
	p.Update(0x10, 0, 1) // one wrong outcome recorded
	s := p.Stats()
	if s.Lookups != 5 || s.Mispredictions != 1 {
		t.Fatalf("stats = %+v, want 5 lookups, 1 misprediction", s)
	}
	if r := s.MispredictionRate(); r != 0.2 {
		t.Fatalf("rate = %v, want 0.2", r)
	}
}

func TestWidthPredictorPoison(t *testing.T) {
	p := NewWidthPredictor(64, DefaultConfidenceBits)
	pc := uint64(0x40)
	if w := p.Predict(pc); w != isa.Width64 {
		t.Fatalf("untrained predictor must be conservative, got %v", w)
	}
	p.Poison(pc, isa.Width8)
	if w := p.Predict(pc); w != isa.Width8 {
		t.Fatalf("poisoned entry predicts %v, want Width8 at full confidence", w)
	}
	// Normal training at the true width recovers the entry: the mismatch
	// resets confidence, so the next prediction is conservative again.
	p.Update(pc, isa.Width8, isa.Width32)
	if w := p.Predict(pc); w != isa.Width64 {
		t.Fatalf("post-recovery prediction %v, want conservative Width64", w)
	}
}

func TestLastArrivalFlip(t *testing.T) {
	p := NewLastArrivalPredictor(64)
	pc := uint64(0x80)
	before := p.Predict(pc)
	p.Flip(pc)
	if after := p.Predict(pc); after == before {
		t.Fatalf("Flip left the prediction at %d", after)
	}
	p.Flip(pc)
	if again := p.Predict(pc); again != before {
		t.Fatalf("double Flip must restore the original prediction, got %d", again)
	}
}
