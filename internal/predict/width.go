// Package predict implements the two predictors ReDSOC relies on: the
// Loh-style resetting-counter data-width predictor (paper Sec. II-B), which
// supplies width slack estimates at decode, and the last-arriving-operand
// predictor (Sec. IV-C, Operational design), which lets a reservation-station
// entry track a single parent and a single grandparent tag. A small register
// scoreboard validates last-arrival predictions at register read.
package predict

import (
	"redsoc/internal/isa"
)

// WidthPredictor is Loh's resetting counter predictor: each entry stores the
// instruction's most recent data width and a k-bit confidence counter. Below
// full confidence it predicts the maximum width (conservative); at full
// confidence it predicts the stored width. A misprediction resets the
// counter and stores the new width.
type WidthPredictor struct {
	widths     []isa.WidthClass
	confidence []uint8
	confMax    uint8
	mask       uint64

	// Statistics.
	lookups      uint64
	conservative uint64 // correct but wider-than-needed predictions
	aggressive   uint64 // under-predictions (require replay)
	exact        uint64
}

// DefaultWidthEntries is the paper's table size: 4K entries (~1.5 KB state).
const DefaultWidthEntries = 4096

// DefaultConfidenceBits is the k of the k-bit resetting counter.
const DefaultConfidenceBits = 2

// NewWidthPredictor builds a predictor with the given table size (a power of
// two) and confidence-counter width.
func NewWidthPredictor(entries int, confBits int) *WidthPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: width predictor entries must be a positive power of two")
	}
	if confBits < 1 || confBits > 7 {
		panic("predict: confidence bits out of range [1,7]")
	}
	p := &WidthPredictor{
		widths:     make([]isa.WidthClass, entries),
		confidence: make([]uint8, entries),
		confMax:    uint8(1<<confBits - 1),
		mask:       uint64(entries - 1),
	}
	for i := range p.widths {
		p.widths[i] = isa.Width64
	}
	return p
}

func (p *WidthPredictor) index(pc uint64) uint64 {
	// PCs step by 4; fold the upper bits in to spread hot loops.
	return ((pc >> 2) ^ (pc >> 14)) & p.mask
}

// Predict returns the width class to schedule with. Until the confidence
// counter saturates the prediction is the conservative maximum width.
func (p *WidthPredictor) Predict(pc uint64) isa.WidthClass {
	p.lookups++
	i := p.index(pc)
	if p.confidence[i] < p.confMax {
		return isa.Width64
	}
	return p.widths[i]
}

// Update trains the predictor with the width the execution actually
// exercised and classifies the prior prediction: aggressive (predicted too
// narrow — a correctness violation requiring replay), conservative
// (predicted too wide — lost slack only) or exact.
func (p *WidthPredictor) Update(pc uint64, predicted, actual isa.WidthClass) {
	switch {
	case predicted < actual:
		p.aggressive++
	case predicted > actual:
		p.conservative++
	default:
		p.exact++
	}
	i := p.index(pc)
	if p.widths[i] == actual {
		if p.confidence[i] < p.confMax {
			p.confidence[i]++
		}
		return
	}
	p.widths[i] = actual
	p.confidence[i] = 0
}

// Poison overwrites the table entry for pc with the given width at full
// confidence — the fault-injection hook modeling a corrupted predictor
// entry (e.g. a particle strike in the SRAM array). The next Predict at a
// PC mapping to this entry returns w outright; a later Update at the true
// width resets the entry through the normal training path.
func (p *WidthPredictor) Poison(pc uint64, w isa.WidthClass) {
	i := p.index(pc)
	p.widths[i] = w
	p.confidence[i] = p.confMax
}

// Stats reports lookup and outcome counts.
type WidthStats struct {
	Lookups, Exact, Conservative, Aggressive uint64
}

// Stats returns the accumulated counters.
func (p *WidthPredictor) Stats() WidthStats {
	return WidthStats{
		Lookups:      p.lookups,
		Exact:        p.exact,
		Conservative: p.conservative,
		Aggressive:   p.aggressive,
	}
}

// AggressiveRate returns the fraction of predictions that under-estimated
// width (the paper reports 0.3–0.4% for a 4K-entry table).
func (s WidthStats) AggressiveRate() float64 {
	n := s.Exact + s.Conservative + s.Aggressive
	if n == 0 {
		return 0
	}
	return float64(s.Aggressive) / float64(n)
}

// StateBytes returns the predictor's storage cost: per entry, 2 width bits
// plus the confidence counter.
func (p *WidthPredictor) StateBytes() int {
	bits := len(p.widths) * (2 + confBitsOf(p.confMax))
	return (bits + 7) / 8
}

func confBitsOf(maxVal uint8) int {
	b := 0
	for v := int(maxVal); v > 0; v >>= 1 {
		b++
	}
	return b
}
