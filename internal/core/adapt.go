package core

// ThresholdController implements the adaptive slack-threshold mechanism the
// paper leaves as future work (Sec. IV-C): every epoch it observes how much
// recycling the current threshold produced against how much functional-unit
// pressure the 2-cycle holds created, and nudges the threshold accordingly.
// The controller is deliberately simple — a hill-climbing rule over two
// rates — so its hardware cost would be a pair of counters and a comparator.
type ThresholdController struct {
	min, max int
	epoch    int64

	threshold int

	// Epoch-start snapshots.
	lastCycle    int64
	lastRecycled int64
	lastStalls   int64

	adjustments int
}

// Default controller bounds: thresholds from 2 ticks (recycle only very
// early completions) to a full cycle.
const (
	MinDynamicThreshold = 2
	// DefaultAdaptEpoch is the controller's observation window in cycles.
	DefaultAdaptEpoch = 1024
)

// NewThresholdController starts at the given threshold with the clock's full
// cycle as the upper bound.
func NewThresholdController(start, ticksPerCycle int) *ThresholdController {
	return &ThresholdController{
		min:       MinDynamicThreshold,
		max:       ticksPerCycle,
		epoch:     DefaultAdaptEpoch,
		threshold: clampInt(start, MinDynamicThreshold, ticksPerCycle),
	}
}

// Threshold returns the current threshold in ticks.
func (t *ThresholdController) Threshold() int { return t.threshold }

// Adjustments returns how many times the controller moved the threshold.
func (t *ThresholdController) Adjustments() int { return t.adjustments }

// Observe feeds the running totals (cycles, recycled ops, FU-stall cycles)
// and adapts at epoch boundaries. It returns true when the threshold moved.
func (t *ThresholdController) Observe(cycle, recycledOps, fuStallCycles int64) bool {
	if cycle-t.lastCycle < t.epoch {
		return false
	}
	dCycles := cycle - t.lastCycle
	dRec := recycledOps - t.lastRecycled
	dStall := fuStallCycles - t.lastStalls
	t.lastCycle, t.lastRecycled, t.lastStalls = cycle, recycledOps, fuStallCycles

	stallRate := float64(dStall) / float64(dCycles)
	recycleRate := float64(dRec) / float64(dCycles)

	prev := t.threshold
	switch {
	case stallRate > 0.25 && recycleRate < stallRate:
		// The 2-cycle holds are congesting the units faster than recycling
		// is paying: back off.
		t.threshold--
	case stallRate < 0.10:
		// Units are comfortable: recycle more aggressively.
		t.threshold++
	}
	t.threshold = clampInt(t.threshold, t.min, t.max)
	if t.threshold != prev {
		t.adjustments++
		return true
	}
	return false
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
