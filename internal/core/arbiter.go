package core

// The select arbiter of Sec. IV-D: an age-mask table plus a wakeup array,
// extended with the P/GP array that skews priority so non-speculative
// (parent-woken) requests always beat speculative (grandparent-woken) ones
// while each group keeps oldest-first order among itself. Global arbitration
// (one window over all entries) is assumed, as in the paper, so a GP-woken
// child can never be selected ahead of its requesting parent.
//
// The gate-level form (Fig. 9: per-entry age masks, effective-mask
// intersection against the wakeup vector) reduces to a total grant order —
// skewed: every non-speculative request before any speculative one, oldest
// first within each group; unskewed: purely oldest first. Grant evaluates
// that order directly with an O(n·m) selection sweep; grantCircuit keeps the
// mask-table implementation as the executable reference, and a test pins the
// two to identical grant sequences.

// Request is one reservation-station entry asking the select logic for a
// grant.
type Request struct {
	// Age orders entries: smaller is older (higher priority). Ages are
	// unique (dynamic sequence numbers).
	Age int64
	// Spec marks a speculative GP-wakeup request.
	Spec bool
}

// Arbiter is the (optionally skewed) oldest-first select logic. It owns the
// grant and mask scratch storage for its evaluations, so a steady-state
// select cycle allocates nothing; an Arbiter is consequently not safe for
// concurrent use (each Simulator owns one).
type Arbiter struct {
	skewed bool

	// Selection scratch reused across Grant calls.
	taken  []bool
	grants []int

	// Scratch for grantCircuit: one flat word buffer backing the
	// per-request age masks and the three working bitsets.
	maskWords []uint64
	older     []bitset
	awake     bitset
	nonSpec   bitset
	eff       bitset
}

// NewArbiter returns an arbiter; skewed enables the P-over-GP priority.
func NewArbiter(skewed bool) *Arbiter { return &Arbiter{skewed: skewed} }

// Skewed reports whether P-over-GP skewing is on.
func (a *Arbiter) Skewed() bool { return a.skewed }

const wordBits = 64

type bitset []uint64

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) set(i int)      { b[i/wordBits] |= 1 << (i % wordBits) }
func (b bitset) clear(i int)    { b[i/wordBits] &^= 1 << (i % wordBits) }
func (b bitset) get(i int) bool { return b[i/wordBits]&(1<<(i%wordBits)) != 0 }

// intersects reports whether b∩c is non-empty.
func (b bitset) intersects(c bitset) bool {
	for i := range b {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

// Grant selects up to m winners from the requests and returns their indices
// in grant order.
//
// The returned slice aliases the arbiter's scratch storage and is valid only
// until the next Grant call.
//
//redsoc:hotpath
func (a *Arbiter) Grant(reqs []Request, m int) []int {
	n := len(reqs)
	if n == 0 || m <= 0 {
		return nil
	}
	if cap(a.taken) < n {
		a.taken = make([]bool, n) //lint:allow schedalloc amortized: scratch regrows once per high-water mark
	}
	taken := a.taken[:n]
	for i := range taken {
		taken[i] = false
	}
	grants := a.grants[:0]
	for len(grants) < m && len(grants) < n {
		w := -1
		for i := range reqs {
			if taken[i] {
				continue
			}
			if w < 0 || a.outranks(&reqs[i], &reqs[w]) {
				w = i
			}
		}
		taken[w] = true
		grants = append(grants, w) //lint:allow schedalloc amortized: the grant list is retained scratch, regrown once per high-water mark
	}
	a.grants = grants
	return grants
}

// outranks reports whether x precedes y in grant order.
//
//redsoc:hotpath
func (a *Arbiter) outranks(x, y *Request) bool {
	if a.skewed && x.Spec != y.Spec {
		return !x.Spec
	}
	return x.Age < y.Age
}

// GrantSorted is Grant for request slices already in ascending Age order (a
// scheduler whose ready set is age-sorted gets this for free). The grant
// order falls out in one or two linear passes instead of the O(n·m)
// selection sweep; the result is identical to Grant on the same input.
//
// The returned slice aliases the arbiter's scratch storage and is valid only
// until the next Grant or GrantSorted call.
//
//redsoc:hotpath
func (a *Arbiter) GrantSorted(reqs []Request, m int) []int {
	n := len(reqs)
	if n == 0 || m <= 0 {
		return nil
	}
	grants := a.grants[:0]
	if a.skewed {
		for i := range reqs {
			if len(grants) == m {
				break
			}
			if !reqs[i].Spec {
				grants = append(grants, i) //lint:allow schedalloc amortized: the grant list is retained scratch, regrown once per high-water mark
			}
		}
		for i := range reqs {
			if len(grants) == m {
				break
			}
			if reqs[i].Spec {
				grants = append(grants, i) //lint:allow schedalloc amortized: the grant list is retained scratch, regrown once per high-water mark
			}
		}
	} else {
		for i := 0; i < n && i < m; i++ {
			grants = append(grants, i) //lint:allow schedalloc amortized: the grant list is retained scratch, regrown once per high-water mark
		}
	}
	a.grants = grants
	return grants
}

// grantCircuit evaluates the Fig. 9 gate-level circuit: each entry's age mask
// has a bit per older entry; a requester wins when its effective mask
// intersects no awake entry. Skewing ORs every non-speculative requester into
// a speculative entry's mask and clears speculative bits from a
// non-speculative entry's mask. Grant produces the same sequence without the
// O(n²) mask table; this form is kept as the executable specification.
func (a *Arbiter) grantCircuit(reqs []Request, m int) []int {
	n := len(reqs)
	if n == 0 || m <= 0 {
		return nil
	}
	a.grow(n)
	// Age masks: older[i] = set of indices with smaller Age.
	older := a.older[:n]
	for i := range reqs {
		older[i].zero()
		for j := range reqs {
			if reqs[j].Age < reqs[i].Age {
				older[i].set(j)
			}
		}
	}
	awake := a.awake
	nonSpecAwake := a.nonSpec
	awake.zero()
	nonSpecAwake.zero()
	for i, r := range reqs {
		awake.set(i)
		if !r.Spec {
			nonSpecAwake.set(i)
		}
	}
	grants := a.grants[:0]
	eff := a.eff
	for len(grants) < m {
		winner := -1
		for i := range reqs {
			if !awake.get(i) {
				continue
			}
			// Effective mask per Fig. 9b.
			for w := range eff {
				eff[w] = older[i][w]
				if a.skewed {
					if reqs[i].Spec {
						eff[w] |= nonSpecAwake[w]
						eff[w] &^= bit(i, w) // an entry never masks itself
					} else {
						eff[w] &= nonSpecAwake[w]
					}
				}
			}
			if !eff.intersects(awake) {
				winner = i
				break
			}
		}
		if winner < 0 {
			break
		}
		grants = append(grants, winner)
		awake.clear(winner)
		nonSpecAwake.clear(winner)
	}
	a.grants = grants
	return grants
}

// grow resizes the circuit's scratch storage for n requests. The per-request
// age masks share one flat word buffer so regrowth is a single allocation.
func (a *Arbiter) grow(n int) {
	words := (n + wordBits - 1) / wordBits
	if cap(a.older) < n || len(a.maskWords) < (n+3)*words {
		a.maskWords = make([]uint64, (n+3)*words)
		a.older = make([]bitset, n)
	}
	a.older = a.older[:n]
	buf := a.maskWords
	for i := range a.older {
		a.older[i] = buf[i*words : (i+1)*words]
	}
	a.awake = buf[n*words : (n+1)*words]
	a.nonSpec = buf[(n+1)*words : (n+2)*words]
	a.eff = buf[(n+2)*words : (n+3)*words]
}

// bit returns the mask word w with only index i's bit (when it lives in w).
func bit(i, w int) uint64 {
	if i/wordBits != w {
		return 0
	}
	return 1 << (i % wordBits)
}
