package core

// The select arbiter of Sec. IV-D, implemented the way Fig. 9 draws it: an
// age-mask table plus a wakeup array, extended with the P/GP array that skews
// priority so non-speculative (parent-woken) requests always beat
// speculative (grandparent-woken) ones while each group keeps oldest-first
// order among itself. Global arbitration (one window over all entries) is
// assumed, as in the paper, so a GP-woken child can never be selected ahead
// of its requesting parent.

// Request is one reservation-station entry asking the select logic for a
// grant.
type Request struct {
	// Age orders entries: smaller is older (higher priority). Ages are
	// unique (dynamic sequence numbers).
	Age int64
	// Spec marks a speculative GP-wakeup request.
	Spec bool
}

// Arbiter is the (optionally skewed) oldest-first select logic.
type Arbiter struct {
	skewed bool
}

// NewArbiter returns an arbiter; skewed enables the P-over-GP priority.
func NewArbiter(skewed bool) *Arbiter { return &Arbiter{skewed: skewed} }

// Skewed reports whether P-over-GP skewing is on.
func (a *Arbiter) Skewed() bool { return a.skewed }

const wordBits = 64

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+wordBits-1)/wordBits) }

func (b bitset) set(i int)      { b[i/wordBits] |= 1 << (i % wordBits) }
func (b bitset) clear(i int)    { b[i/wordBits] &^= 1 << (i % wordBits) }
func (b bitset) get(i int) bool { return b[i/wordBits]&(1<<(i%wordBits)) != 0 }

// intersects reports whether b∩c is non-empty.
func (b bitset) intersects(c bitset) bool {
	for i := range b {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

// Grant selects up to m winners from the requests and returns their indices
// in grant order. It evaluates the Fig. 9 circuit: each entry's age mask has
// a bit per older entry; a requester wins when its effective mask intersects
// no awake entry. Skewing ORs every non-speculative requester into a
// speculative entry's mask and clears speculative bits from a
// non-speculative entry's mask.
func (a *Arbiter) Grant(reqs []Request, m int) []int {
	n := len(reqs)
	if n == 0 || m <= 0 {
		return nil
	}
	// Age masks: older[i] = set of indices with smaller Age.
	older := make([]bitset, n)
	for i := range reqs {
		older[i] = newBitset(n)
		for j := range reqs {
			if reqs[j].Age < reqs[i].Age {
				older[i].set(j)
			}
		}
	}
	awake := newBitset(n)
	nonSpecAwake := newBitset(n)
	for i, r := range reqs {
		awake.set(i)
		if !r.Spec {
			nonSpecAwake.set(i)
		}
	}
	var grants []int
	eff := newBitset(n)
	for len(grants) < m {
		winner := -1
		for i := range reqs {
			if !awake.get(i) {
				continue
			}
			// Effective mask per Fig. 9b.
			for w := range eff {
				eff[w] = older[i][w]
				if a.skewed {
					if reqs[i].Spec {
						eff[w] |= nonSpecAwake[w]
						eff[w] &^= bit(i, w) // an entry never masks itself
					} else {
						eff[w] &= nonSpecAwake[w]
					}
				}
			}
			if !eff.intersects(awake) {
				winner = i
				break
			}
		}
		if winner < 0 {
			break
		}
		grants = append(grants, winner)
		awake.clear(winner)
		nonSpecAwake.clear(winner)
	}
	return grants
}

// bit returns the mask word w with only index i's bit (when it lives in w).
func bit(i, w int) uint64 {
	if i/wordBits != w {
		return 0
	}
	return 1 << (i % wordBits)
}
