package core

// The select arbiter of Sec. IV-D, implemented the way Fig. 9 draws it: an
// age-mask table plus a wakeup array, extended with the P/GP array that skews
// priority so non-speculative (parent-woken) requests always beat
// speculative (grandparent-woken) ones while each group keeps oldest-first
// order among itself. Global arbitration (one window over all entries) is
// assumed, as in the paper, so a GP-woken child can never be selected ahead
// of its requesting parent.

// Request is one reservation-station entry asking the select logic for a
// grant.
type Request struct {
	// Age orders entries: smaller is older (higher priority). Ages are
	// unique (dynamic sequence numbers).
	Age int64
	// Spec marks a speculative GP-wakeup request.
	Spec bool
}

// Arbiter is the (optionally skewed) oldest-first select logic. It owns the
// age-mask and grant scratch storage for its Grant evaluations, so a
// steady-state select cycle allocates nothing; an Arbiter is consequently not
// safe for concurrent use (each Simulator owns one).
type Arbiter struct {
	skewed bool

	// Scratch reused across Grant calls: one flat word buffer backing the
	// per-request age masks, the three working bitsets, and the grant list
	// handed back to the caller.
	maskWords []uint64
	older     []bitset
	awake     bitset
	nonSpec   bitset
	eff       bitset
	grants    []int
}

// NewArbiter returns an arbiter; skewed enables the P-over-GP priority.
func NewArbiter(skewed bool) *Arbiter { return &Arbiter{skewed: skewed} }

// Skewed reports whether P-over-GP skewing is on.
func (a *Arbiter) Skewed() bool { return a.skewed }

const wordBits = 64

type bitset []uint64

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) set(i int)      { b[i/wordBits] |= 1 << (i % wordBits) }
func (b bitset) clear(i int)    { b[i/wordBits] &^= 1 << (i % wordBits) }
func (b bitset) get(i int) bool { return b[i/wordBits]&(1<<(i%wordBits)) != 0 }

// intersects reports whether b∩c is non-empty.
func (b bitset) intersects(c bitset) bool {
	for i := range b {
		if b[i]&c[i] != 0 {
			return true
		}
	}
	return false
}

// Grant selects up to m winners from the requests and returns their indices
// in grant order. It evaluates the Fig. 9 circuit: each entry's age mask has
// a bit per older entry; a requester wins when its effective mask intersects
// no awake entry. Skewing ORs every non-speculative requester into a
// speculative entry's mask and clears speculative bits from a
// non-speculative entry's mask.
//
// The returned slice aliases the arbiter's scratch storage and is valid only
// until the next Grant call.
func (a *Arbiter) Grant(reqs []Request, m int) []int {
	n := len(reqs)
	if n == 0 || m <= 0 {
		return nil
	}
	a.grow(n)
	// Age masks: older[i] = set of indices with smaller Age.
	older := a.older[:n]
	for i := range reqs {
		older[i].zero()
		for j := range reqs {
			if reqs[j].Age < reqs[i].Age {
				older[i].set(j)
			}
		}
	}
	awake := a.awake
	nonSpecAwake := a.nonSpec
	awake.zero()
	nonSpecAwake.zero()
	for i, r := range reqs {
		awake.set(i)
		if !r.Spec {
			nonSpecAwake.set(i)
		}
	}
	grants := a.grants[:0]
	eff := a.eff
	for len(grants) < m {
		winner := -1
		for i := range reqs {
			if !awake.get(i) {
				continue
			}
			// Effective mask per Fig. 9b.
			for w := range eff {
				eff[w] = older[i][w]
				if a.skewed {
					if reqs[i].Spec {
						eff[w] |= nonSpecAwake[w]
						eff[w] &^= bit(i, w) // an entry never masks itself
					} else {
						eff[w] &= nonSpecAwake[w]
					}
				}
			}
			if !eff.intersects(awake) {
				winner = i
				break
			}
		}
		if winner < 0 {
			break
		}
		grants = append(grants, winner)
		awake.clear(winner)
		nonSpecAwake.clear(winner)
	}
	a.grants = grants
	return grants
}

// grow resizes the scratch storage for n requests. The per-request age masks
// share one flat word buffer so regrowth is a single allocation.
func (a *Arbiter) grow(n int) {
	words := (n + wordBits - 1) / wordBits
	if cap(a.older) < n || len(a.maskWords) < (n+3)*words {
		a.maskWords = make([]uint64, (n+3)*words) //lint:allow schedalloc amortized: grow fires only when capacity is exceeded, once per high-water mark
		a.older = make([]bitset, n)               //lint:allow schedalloc amortized: grow fires only when capacity is exceeded, once per high-water mark
	}
	a.older = a.older[:n]
	buf := a.maskWords
	for i := range a.older {
		a.older[i] = buf[i*words : (i+1)*words]
	}
	a.awake = buf[n*words : (n+1)*words]
	a.nonSpec = buf[(n+1)*words : (n+2)*words]
	a.eff = buf[(n+2)*words : (n+3)*words]
}

// bit returns the mask word w with only index i's bit (when it lives in w).
func bit(i, w int) uint64 {
	if i/wordBits != w {
		return 0
	}
	return 1 << (i % wordBits)
}
