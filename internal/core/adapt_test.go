package core

import "testing"

func TestControllerRaisesWhenComfortable(t *testing.T) {
	c := NewThresholdController(4, 8)
	// Epochs with no FU stalls: the controller should walk to the max.
	cycle := int64(0)
	for i := 0; i < 10; i++ {
		cycle += DefaultAdaptEpoch
		c.Observe(cycle, int64(i*100), 0)
	}
	if c.Threshold() != 8 {
		t.Fatalf("threshold = %d, want 8", c.Threshold())
	}
	if c.Adjustments() == 0 {
		t.Fatal("adjustments not counted")
	}
}

func TestControllerBacksOffUnderPressure(t *testing.T) {
	c := NewThresholdController(8, 8)
	cycle, stalls := int64(0), int64(0)
	for i := 0; i < 10; i++ {
		cycle += DefaultAdaptEpoch
		stalls += DefaultAdaptEpoch / 2 // 50% FU-stall cycles, little recycling
		c.Observe(cycle, int64(i*10), stalls)
	}
	if c.Threshold() != MinDynamicThreshold {
		t.Fatalf("threshold = %d, want %d", c.Threshold(), MinDynamicThreshold)
	}
}

func TestControllerHoldsInTheMiddle(t *testing.T) {
	c := NewThresholdController(6, 8)
	// 15% stall rate with strong recycling: neither rule fires.
	cycle, stalls, rec := int64(0), int64(0), int64(0)
	for i := 0; i < 5; i++ {
		cycle += DefaultAdaptEpoch
		stalls += DefaultAdaptEpoch * 15 / 100
		rec += DefaultAdaptEpoch // recycleRate 1.0 > stallRate
		c.Observe(cycle, rec, stalls)
	}
	if c.Threshold() != 6 {
		t.Fatalf("threshold drifted to %d", c.Threshold())
	}
	if c.Adjustments() != 0 {
		t.Fatal("no adjustments expected")
	}
}

func TestControllerEpochGating(t *testing.T) {
	c := NewThresholdController(4, 8)
	if c.Observe(10, 0, 0) {
		t.Fatal("mid-epoch observation must not adapt")
	}
	if !c.Observe(DefaultAdaptEpoch, 0, 0) {
		t.Fatal("epoch boundary with low stalls must raise the threshold")
	}
}

func TestControllerClampsStart(t *testing.T) {
	if got := NewThresholdController(99, 8).Threshold(); got != 8 {
		t.Fatalf("start clamped to %d", got)
	}
	if got := NewThresholdController(0, 8).Threshold(); got != MinDynamicThreshold {
		t.Fatalf("start clamped to %d", got)
	}
}
