package core

import (
	"redsoc/internal/timing"
)

// Schedule is the planned execution window of one issued operation: the
// instant evaluation begins, the instant the result stabilizes, whether the
// operation started mid-cycle off a transparent bypass (recycled), and how
// many cycles its functional unit is held — two when evaluation crosses a
// clock edge, the paper's IT3 rule.
type Schedule struct {
	Start    timing.Ticks
	Comp     timing.Ticks
	Recycled bool
	FUCycles int
}

// PlanSynchronous schedules a conventional ("true synchronous") evaluation:
// the operation clocks at the first cycle boundary at or after both its FU
// arrival and its last parent's completion, and runs for a whole number of
// cycles. Baseline cores schedule every operation this way; ReDSOC still
// schedules multi-cycle, memory and FP operations this way.
func PlanSynchronous(clock timing.Clock, arrival, parentReady, exTicks timing.Ticks) Schedule {
	start := arrival
	if pr := clock.CeilCycle(parentReady); pr > start {
		start = pr
	}
	tpc := clock.CyclesToTicks(1)
	cycles := int((exTicks + tpc - 1) / tpc)
	if cycles < 1 {
		cycles = 1
	}
	return Schedule{
		Start:    start,
		Comp:     start + clock.CyclesToTicks(cycles),
		FUCycles: cycles,
	}
}

// PlanTransparent schedules a single-cycle evaluation under ReDSOC: the
// operation begins the instant its last parent's value stabilizes (or at its
// FU arrival edge if the parents are already done), runs for its estimated
// EX-TIME, and holds the FU for a second cycle if that window crosses a
// clock edge. The ok result is false when the parents do not complete within
// the operation's arrival cycle — the speculative issue must be replayed
// (latency-misprediction style), which the scheduler's eligibility check
// makes rare.
func PlanTransparent(clock timing.Clock, arrival, parentReady, exTicks timing.Ticks) (Schedule, bool) {
	tpc := clock.CyclesToTicks(1)
	start := arrival
	recycled := false
	if parentReady > arrival {
		if parentReady >= arrival+tpc {
			return Schedule{}, false
		}
		start = parentReady
		recycled = true
	}
	comp := start + exTicks
	fuCycles := 1
	if clock.CrossesBoundary(start, exTicks) {
		fuCycles = 2
	}
	return Schedule{Start: start, Comp: comp, Recycled: recycled, FUCycles: fuCycles}, true
}

// RecycleEligible is the select-time gate of Sec. IV-C step 10: a consumer
// may issue into the cycle its producer completes in only if (a) recycling is
// on, (b) the producer's completion instant falls strictly inside the
// consumer's execution cycle, and (c) the completion fraction is at or below
// the slack threshold (enough of the cycle remains to be worth a possible
// 2-cycle FU hold).
func (p Params) RecycleEligible(clock timing.Clock, execCycleStart, parentCI timing.Ticks) bool {
	if !p.Recycle {
		return false
	}
	tpc := clock.CyclesToTicks(1)
	if parentCI <= execCycleStart || parentCI >= execCycleStart+tpc {
		return false
	}
	return clock.FracOf(parentCI) <= p.ThresholdTicks
}

// IssueEligible reports whether an operation whose parents complete at
// parentReady can be issued at the cycle whose execution window starts at
// execCycleStart: either the conventional condition (parents done by the
// window's start) or the recycling condition holds. transparent marks
// operations capable of transparent evaluation (single-cycle on the ALU/SIMD
// bypass network).
func (p Params) IssueEligible(clock timing.Clock, execCycleStart, parentReady timing.Ticks, transparent bool) bool {
	if parentReady <= execCycleStart {
		return true
	}
	if !transparent {
		return false
	}
	return p.RecycleEligible(clock, execCycleStart, parentReady)
}
