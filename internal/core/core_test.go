package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"redsoc/internal/isa"
	"redsoc/internal/predict"
	"redsoc/internal/timing"
)

func clock() timing.Clock { return timing.MustClock(timing.DefaultPrecisionBits) }

func TestParamsValidate(t *testing.T) {
	c := clock()
	p := DefaultParams(c)
	if err := p.Validate(c); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	p.ThresholdTicks = 99
	if p.Validate(c) == nil {
		t.Fatal("oversized threshold must fail validation")
	}
	bad := Params{EGPW: true}
	if bad.Validate(c) == nil {
		t.Fatal("EGPW without recycling must fail validation")
	}
}

func TestPlanSynchronousClocksAtBoundaries(t *testing.T) {
	c := clock()
	// Parent completes at tick 11 (cycle 1, frac 3); consumer arrives at
	// cycle 1 (tick 8). Synchronous start must wait for the edge at tick 16.
	s := PlanSynchronous(c, 8, 11, 8)
	if s.Start != 16 || s.Comp != 24 || s.Recycled || s.FUCycles != 1 {
		t.Fatalf("schedule = %+v", s)
	}
	// Parents long done: start at arrival.
	s = PlanSynchronous(c, 16, 5, 8)
	if s.Start != 16 || s.Comp != 24 {
		t.Fatalf("schedule = %+v", s)
	}
	// Multi-cycle: 3 cycles of EX-TIME.
	s = PlanSynchronous(c, 8, 0, 24)
	if s.Comp != 8+24 || s.FUCycles != 3 {
		t.Fatalf("multi-cycle schedule = %+v", s)
	}
	// Sub-cycle EX-TIME still occupies a full cycle.
	s = PlanSynchronous(c, 8, 0, 5)
	if s.Comp != 16 || s.FUCycles != 1 {
		t.Fatalf("sub-cycle sync schedule = %+v", s)
	}
}

func TestPlanTransparentRecycles(t *testing.T) {
	c := clock()
	// Paper Fig. 4c, scaled to ticks (0.8ns/0.6ns/0.5ns at 500ps cycle →
	// but in our 8-tick world): parent completes at tick 13 inside the
	// consumer's arrival cycle [8,16); consumer EX-TIME 5 ticks.
	s, ok := PlanTransparent(c, 8, 13, 5)
	if !ok {
		t.Fatal("transparent plan must succeed")
	}
	if !s.Recycled || s.Start != 13 || s.Comp != 18 {
		t.Fatalf("schedule = %+v", s)
	}
	if s.FUCycles != 2 {
		t.Fatalf("evaluation 13..18 crosses tick 16; FU must be held 2 cycles, got %d", s.FUCycles)
	}
}

func TestPlanTransparentNoCrossingSingleCycleHold(t *testing.T) {
	c := clock()
	// Parent completes at tick 9, consumer EX-TIME 4: window [9,13) inside
	// one cycle -> 1-cycle FU hold (paper IT3).
	s, ok := PlanTransparent(c, 8, 9, 4)
	if !ok || s.FUCycles != 1 || !s.Recycled {
		t.Fatalf("schedule = %+v ok=%v", s, ok)
	}
}

func TestPlanTransparentBoundaryStart(t *testing.T) {
	c := clock()
	// Parents done before arrival: start at the edge, not recycled.
	s, ok := PlanTransparent(c, 16, 10, 6)
	if !ok || s.Recycled || s.Start != 16 || s.Comp != 22 || s.FUCycles != 1 {
		t.Fatalf("schedule = %+v ok=%v", s, ok)
	}
	// Exactly at the edge counts as ready (not recycled).
	s, ok = PlanTransparent(c, 16, 16, 8)
	if !ok || s.Recycled || s.Start != 16 {
		t.Fatalf("schedule = %+v ok=%v", s, ok)
	}
}

func TestPlanTransparentRejectsLateParents(t *testing.T) {
	c := clock()
	// Parent completes a full cycle after arrival: the speculative issue
	// cannot be honored.
	if _, ok := PlanTransparent(c, 8, 16, 4); ok {
		t.Fatal("parents completing at/after the next edge must fail the plan")
	}
	if _, ok := PlanTransparent(c, 8, 40, 4); ok {
		t.Fatal("far-future parents must fail the plan")
	}
}

// Property: transparent scheduling never starts before the parent value
// stabilizes nor before FU arrival, and always completes no later than a
// synchronous schedule would.
func TestTransparentNeverWorseProperty(t *testing.T) {
	c := clock()
	f := func(arrCyc uint8, parentOff uint8, ex uint8) bool {
		arrival := c.CycleStart(int64(arrCyc % 50))
		parentReady := arrival - 8 + timing.Ticks(parentOff%16)
		if parentReady < 0 {
			parentReady = 0
		}
		exTicks := timing.Ticks(ex%8) + 1
		tr, ok := PlanTransparent(c, arrival, parentReady, exTicks)
		if !ok {
			return true // out of the recycling window; nothing to compare
		}
		if tr.Start < arrival && tr.Start < parentReady {
			return false
		}
		sync := PlanSynchronous(c, arrival, parentReady, exTicks)
		return tr.Comp <= sync.Comp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRecycleEligibleThreshold(t *testing.T) {
	c := clock()
	p := DefaultParams(c) // threshold 6
	// Parent CI at frac 5 of the exec cycle: eligible.
	if !p.RecycleEligible(c, 8, 13) {
		t.Fatal("frac 5 <= threshold 6 must be eligible")
	}
	// Frac 7 exceeds the threshold: too little slack left.
	if p.RecycleEligible(c, 8, 15) {
		t.Fatal("frac 7 > threshold 6 must be ineligible")
	}
	// CI at the window edges is not "inside" the cycle.
	if p.RecycleEligible(c, 8, 8) || p.RecycleEligible(c, 8, 16) {
		t.Fatal("boundary CIs must be ineligible")
	}
	// Recycling off disables everything.
	off := Params{}
	if off.RecycleEligible(c, 8, 13) {
		t.Fatal("recycling disabled must never be eligible")
	}
}

func TestIssueEligible(t *testing.T) {
	c := clock()
	p := DefaultParams(c)
	// Conventional: parents done by window start.
	if !p.IssueEligible(c, 16, 16, false) || !p.IssueEligible(c, 16, 3, false) {
		t.Fatal("conventional eligibility broken")
	}
	// Late parents, non-transparent op: not eligible.
	if p.IssueEligible(c, 16, 20, false) {
		t.Fatal("sync op with late parents must not issue")
	}
	// Late parents inside the window, transparent op: eligible via recycling.
	if !p.IssueEligible(c, 16, 20, true) {
		t.Fatal("transparent op must issue into its producer's completion cycle")
	}
}

func TestEstimatorBucketsAndWidths(t *testing.T) {
	c := clock()
	lut := timing.NewLUT(c)
	wp := predict.NewWidthPredictor(64, 2)
	est := NewEstimator(lut, wp, DefaultParams(c))

	// Logic op: no width prediction involved, high slack.
	and := isa.Instruction{Op: isa.OpAND, PC: 0x10, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	e := est.Estimate(&and)
	if e.Predicted {
		t.Error("logic ops must not consult the width predictor")
	}
	if e.ExTicks >= 8 {
		t.Errorf("AND EX-TIME = %d ticks, expected sub-cycle", e.ExTicks)
	}

	// Arith op: width predicted; cold prediction is conservative w64.
	add := isa.Instruction{Op: isa.OpADD, PC: 0x14, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	e = est.Estimate(&add)
	if !e.Predicted || e.Width != isa.Width64 {
		t.Errorf("cold arith estimate = %+v", e)
	}
	wide := e.ExTicks

	// Train the predictor narrow; EX-TIME must drop.
	for i := 0; i < 4; i++ {
		est.Validate(&add, est.Estimate(&add), isa.Width8)
	}
	e = est.Estimate(&add)
	if e.Width != isa.Width8 || e.ExTicks >= wide {
		t.Errorf("trained estimate = %+v (wide was %d)", e, wide)
	}

	// SIMD: width comes from the lane, not the predictor.
	v := isa.Instruction{Op: isa.OpVADD, Lane: isa.Lane8, PC: 0x18, Dst: isa.V(1), Src1: isa.V(2), Src2: isa.V(3)}
	e = est.Estimate(&v)
	if e.Predicted || e.Width != isa.Width8 {
		t.Errorf("SIMD estimate = %+v", e)
	}

	// Multi-cycle: full-cycle EX-TIME.
	mul := isa.Instruction{Op: isa.OpMUL, PC: 0x1c, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	if e := est.Estimate(&mul); e.ExTicks != 8 {
		t.Errorf("MUL EX-TIME = %d ticks, want 8", e.ExTicks)
	}
}

func TestEstimatorValidateDetectsAggressive(t *testing.T) {
	c := clock()
	est := NewEstimator(timing.NewLUT(c), predict.NewWidthPredictor(64, 2), DefaultParams(c))
	add := isa.Instruction{Op: isa.OpADD, PC: 0x20, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	// Train narrow, then feed a wide actual: aggressive.
	for i := 0; i < 4; i++ {
		est.Validate(&add, est.Estimate(&add), isa.Width8)
	}
	e := est.Estimate(&add)
	if e.Width != isa.Width8 {
		t.Fatal("training failed")
	}
	if !est.Validate(&add, e, isa.Width64) {
		t.Fatal("narrow prediction with wide operands must be aggressive")
	}
	if est.CorrectedTicks(&add, isa.Width64) <= e.ExTicks {
		t.Fatal("corrected EX-TIME must exceed the aggressive estimate")
	}
}

func TestEstimatorWidthPredictionDisabled(t *testing.T) {
	c := clock()
	p := DefaultParams(c)
	p.WidthPrediction = false
	est := NewEstimator(timing.NewLUT(c), predict.NewWidthPredictor(64, 2), p)
	add := isa.Instruction{Op: isa.OpADD, PC: 0x24, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)}
	e := est.Estimate(&add)
	if e.Predicted || e.Width != isa.Width64 {
		t.Fatalf("estimate with width prediction off = %+v", e)
	}
	if est.Validate(&add, e, isa.Width8) {
		t.Fatal("unpredicted estimates are never aggressive")
	}
}

// sortSpec is the behavioral specification of the arbiter: non-speculative
// requests oldest-first, then speculative oldest-first (when skewed);
// pure oldest-first otherwise.
func sortSpec(reqs []Request, m int, skewed bool) []int {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := reqs[idx[a]], reqs[idx[b]]
		if skewed && ra.Spec != rb.Spec {
			return !ra.Spec
		}
		return ra.Age < rb.Age
	})
	if len(idx) > m {
		idx = idx[:m]
	}
	return idx
}

func TestArbiterPaperExample(t *testing.T) {
	// Fig. 9b: entries 1,2,3 awake; entry 2 non-speculative, 1 and 3
	// speculative; ages follow the mask table (0 oldest, then 3, 1, 2...).
	// In the figure's mask table: entry1 mask 1001 (older: 0,3), entry2 mask
	// 1101 (older: 0,1,3), entry3 mask 1000 (older: 0). So age order is
	// 0 < 3 < 1 < 2.
	reqs := []Request{
		{Age: 2, Spec: true},  // entry 1
		{Age: 3, Spec: false}, // entry 2
		{Age: 1, Spec: true},  // entry 3
	}
	g := NewArbiter(true).Grant(reqs, 1)
	if len(g) != 1 || g[0] != 1 {
		t.Fatalf("skewed grant = %v, want entry index 1 (the non-speculative request)", g)
	}
	// Unskewed: the oldest (entry 3) wins.
	g = NewArbiter(false).Grant(reqs, 1)
	if len(g) != 1 || g[0] != 2 {
		t.Fatalf("conventional grant = %v, want entry index 2 (oldest)", g)
	}
}

func TestArbiterMultipleGrants(t *testing.T) {
	reqs := []Request{
		{Age: 5, Spec: true},
		{Age: 1, Spec: false},
		{Age: 3, Spec: true},
		{Age: 2, Spec: false},
	}
	g := NewArbiter(true).Grant(reqs, 3)
	want := []int{1, 3, 2} // both non-spec by age, then oldest spec
	if len(g) != 3 || g[0] != want[0] || g[1] != want[1] || g[2] != want[2] {
		t.Fatalf("grants = %v, want %v", g, want)
	}
}

func TestArbiterEdgeCases(t *testing.T) {
	a := NewArbiter(true)
	if g := a.Grant(nil, 4); g != nil {
		t.Fatal("no requests -> no grants")
	}
	if g := a.Grant([]Request{{Age: 1}}, 0); g != nil {
		t.Fatal("no FUs -> no grants")
	}
	if g := a.Grant([]Request{{Age: 1}, {Age: 2}}, 10); len(g) != 2 {
		t.Fatal("grants must be capped by requests")
	}
}

// Property: the mask-based circuit matches the sort-based specification for
// random request sets, skewed and not, including across the 64-bit bitset
// word boundary.
func TestArbiterMatchesSpecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80) // crosses the word boundary at 64
		reqs := make([]Request, n)
		ages := rng.Perm(1000)
		for i := range reqs {
			reqs[i] = Request{Age: int64(ages[i]), Spec: rng.Intn(2) == 0}
		}
		m := 1 + rng.Intn(6)
		for _, skewed := range []bool{false, true} {
			got := NewArbiter(skewed).Grant(reqs, m)
			want := sortSpec(reqs, m, skewed)
			if len(got) != len(want) {
				t.Fatalf("trial %d skew=%v: grants %v, want %v", trial, skewed, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d skew=%v: grants %v, want %v", trial, skewed, got, want)
				}
			}
			// The gate-level Fig. 9 circuit must produce the identical
			// grant sequence: it is the executable specification the
			// selection sweep is an optimization of.
			circuit := NewArbiter(skewed).grantCircuit(reqs, m)
			if len(circuit) != len(want) {
				t.Fatalf("trial %d skew=%v: circuit grants %v, want %v", trial, skewed, circuit, want)
			}
			for i := range want {
				if circuit[i] != want[i] {
					t.Fatalf("trial %d skew=%v: circuit grants %v, want %v", trial, skewed, circuit, want)
				}
			}
			// GrantSorted on the age-sorted permutation must match Grant on
			// the same (sorted) input.
			sorted := append([]Request(nil), reqs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Age < sorted[j].Age })
			fast := NewArbiter(skewed).GrantSorted(sorted, m)
			slow := NewArbiter(skewed).Grant(sorted, m)
			if len(fast) != len(slow) {
				t.Fatalf("trial %d skew=%v: GrantSorted %v, Grant %v", trial, skewed, fast, slow)
			}
			for i := range slow {
				if fast[i] != slow[i] {
					t.Fatalf("trial %d skew=%v: GrantSorted %v, Grant %v", trial, skewed, fast, slow)
				}
			}
		}
	}
}

func TestSeqTracker(t *testing.T) {
	tr := NewSeqTracker()
	tr.Record(1) // ignored: not a transparent sequence
	tr.Record(2)
	tr.Record(2)
	tr.Record(6)
	if tr.Count() != 3 {
		t.Fatalf("Count = %d", tr.Count())
	}
	if got := tr.MeanLength(); got < 3.32 || got > 3.34 {
		t.Fatalf("MeanLength = %v", got)
	}
	// Weighted: (4+4+36)/(2+2+6) = 44/10 = 4.4
	if got := tr.ExpectedLength(); got != 4.4 {
		t.Fatalf("ExpectedLength = %v", got)
	}
	other := NewSeqTracker()
	other.Record(4)
	tr.Merge(other)
	if tr.Count() != 4 {
		t.Fatalf("merged Count = %d", tr.Count())
	}
	if tr.Histogram()[4] != 1 {
		t.Fatal("histogram lost the merged entry")
	}
}

func TestSeqTrackerEmpty(t *testing.T) {
	tr := NewSeqTracker()
	if tr.MeanLength() != 0 || tr.ExpectedLength() != 0 || tr.Count() != 0 {
		t.Fatal("empty tracker must report zeros")
	}
}

func TestArbiterLoneSpeculativeWins(t *testing.T) {
	// A lone speculative requester must still be granted under skewing: the
	// self-mask clearing in Fig. 9b keeps an entry from blocking itself.
	g := NewArbiter(true).Grant([]Request{{Age: 7, Spec: true}}, 1)
	if len(g) != 1 || g[0] != 0 {
		t.Fatalf("lone speculative grant = %v, want [0]", g)
	}
}

func TestArbiterAllSpeculativeOldestFirst(t *testing.T) {
	// With no non-speculative competition, skewing must degrade to plain
	// oldest-first among the speculative group.
	reqs := []Request{
		{Age: 30, Spec: true},
		{Age: 10, Spec: true},
		{Age: 20, Spec: true},
	}
	g := NewArbiter(true).Grant(reqs, 2)
	if len(g) != 2 || g[0] != 1 || g[1] != 2 {
		t.Fatalf("all-speculative grants = %v, want [1 2]", g)
	}
}

func TestArbiterYoungNonSpecBeatsOldSpec(t *testing.T) {
	// The skew is absolute: the youngest parent-woken request outranks the
	// oldest grandparent-woken one, in both grant order and a m=1 cutoff.
	reqs := []Request{
		{Age: 1, Spec: true},
		{Age: 100, Spec: false},
	}
	g := NewArbiter(true).Grant(reqs, 1)
	if len(g) != 1 || g[0] != 1 {
		t.Fatalf("skewed m=1 grant = %v, want [1]", g)
	}
	g = NewArbiter(true).Grant(reqs, 2)
	if len(g) != 2 || g[0] != 1 || g[1] != 0 {
		t.Fatalf("skewed m=2 grants = %v, want [1 0]", g)
	}
	// Without skewing, age decides.
	g = NewArbiter(false).Grant(reqs, 1)
	if len(g) != 1 || g[0] != 0 {
		t.Fatalf("conventional grant = %v, want [0]", g)
	}
}

func TestArbiterNegativeGrantCount(t *testing.T) {
	if g := NewArbiter(false).Grant([]Request{{Age: 1}}, -3); g != nil {
		t.Fatalf("negative m must grant nothing, got %v", g)
	}
}
