package core

import (
	"redsoc/internal/isa"
	"redsoc/internal/predict"
	"redsoc/internal/timing"
)

// Estimate is the decode-time slack information attached to an instruction:
// the LUT address it mapped to, the width class used (predicted for scalar
// arithmetic, ISA-specified for SIMD), and the conservative EX-TIME in ticks
// that the reservation station carries (3-bit at the default precision).
type Estimate struct {
	Addr      timing.Address
	Width     isa.WidthClass
	Predicted bool // width came from the predictor (needs validation)
	ExTicks   timing.Ticks
}

// Estimator produces EX-TIME estimates at decode: opcode and type slack come
// straight from the instruction, width slack goes through the data-width
// predictor (Sec. II-B).
type Estimator struct {
	lut    *timing.LUT
	widths *predict.WidthPredictor
	params Params
	clock  timing.Clock
}

// NewEstimator wires the LUT and predictor together.
func NewEstimator(lut *timing.LUT, widths *predict.WidthPredictor, params Params) *Estimator {
	return &Estimator{lut: lut, widths: widths, params: params, clock: lut.Clock()}
}

// widthSensitive reports whether the opcode's delay depends on operand width
// (the carry-chain classes), i.e. whether width prediction buys anything.
func widthSensitive(op isa.Op) bool {
	c := op.Class()
	return c == isa.ClassArith || c == isa.ClassShiftArith
}

// Estimate classifies one single-cycle instruction. Multi-cycle classes get
// a full-cycle EX-TIME: they are "true synchronous" and recycle nothing.
func (e *Estimator) Estimate(in *isa.Instruction) Estimate {
	tpc := e.clock.CyclesToTicks(1)
	if !in.Op.SingleCycle() {
		return Estimate{Width: isa.Width64, ExTicks: tpc}
	}
	w := isa.Width64
	predicted := false
	switch {
	case in.Op.IsSIMD():
		w = isa.LaneWidthClass(in.Lane) // type slack: specified by the ISA
	case e.params.WidthPrediction && widthSensitive(in.Op):
		w = e.widths.Predict(in.PC)
		predicted = true
	}
	addr := timing.InstrAddress(in.Op, w, in.Lane)
	return Estimate{
		Addr:      addr,
		Width:     w,
		Predicted: predicted,
		ExTicks:   e.lut.CompTicks(addr),
	}
}

// Validate checks a width-predicted estimate against the width the operands
// actually exercised (done at execute by inspecting high-order bits).
// It trains the predictor and reports whether the prediction was aggressive —
// an under-estimate that requires selective reissue.
func (e *Estimator) Validate(in *isa.Instruction, est Estimate, actual isa.WidthClass) (aggressive bool) {
	if !est.Predicted {
		return false
	}
	e.widths.Update(in.PC, est.Width, actual)
	return est.Width < actual
}

// Aggressive reports whether a width-predicted estimate understates the width
// the operands actually exercised, without training the predictor. The MOS
// fusion comparator uses it as a side-effect-free precheck: an abandoned
// pairing must leave no predictor or counter residue, since the op will
// execute — and Validate — through the normal issue path later.
func (e *Estimator) Aggressive(est Estimate, actual isa.WidthClass) bool {
	return est.Predicted && est.Width < actual
}

// CorrectedTicks returns the EX-TIME the instruction should have carried,
// given its actual width — used when replaying an aggressive misprediction.
func (e *Estimator) CorrectedTicks(in *isa.Instruction, actual isa.WidthClass) timing.Ticks {
	if !in.Op.SingleCycle() {
		return e.clock.CyclesToTicks(1)
	}
	return e.lut.CompTicks(timing.InstrAddress(in.Op, actual, in.Lane))
}

// Clock returns the estimator's clock.
func (e *Estimator) Clock() timing.Clock { return e.clock }
