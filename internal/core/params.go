// Package core implements the paper's primary contribution: the ReDSOC
// slack-recycling machinery layered on an out-of-order scheduler —
// per-instruction slack estimation through the 14-bucket LUT and the
// data-width predictor (Sec. II), the transparent-dataflow timing rules that
// start a consumer at its producer's completion instant and hold a functional
// unit two cycles when evaluation crosses a clock edge (Sec. III), the
// Eager Grandparent Wakeup and skewed selection optimizations to the
// scheduling loop (Sec. IV), and the transparent-sequence accounting behind
// Fig. 11.
//
// The package is deliberately free of pipeline plumbing: internal/ooo owns
// the machine model and calls into these components, so everything specific
// to the paper is in one place.
package core

import (
	"fmt"

	"redsoc/internal/timing"
)

// RSEDesign selects between the paper's two slack-aware reservation-station
// designs (Sec. IV-C).
type RSEDesign uint8

const (
	// Operational is the practical design: each RSE tracks only the
	// predicted last-arriving parent and grandparent tags, validated by a
	// register scoreboard. This is the paper's default.
	Operational RSEDesign = iota
	// Illustrative is the full design: all parent and grandparent tags are
	// tracked explicitly. It is ~equivalent in performance (within 1%) but
	// far more expensive in hardware.
	Illustrative
)

// String names the design.
func (d RSEDesign) String() string {
	if d == Illustrative {
		return "illustrative"
	}
	return "operational"
}

// Params configures the ReDSOC mechanism. The zero value disables recycling
// entirely (pure baseline); use DefaultParams for the paper's configuration.
type Params struct {
	// Recycle enables slack recycling (transparent dataflow + CI tracking).
	Recycle bool
	// EGPW enables Eager Grandparent Wakeup; without it only conventionally
	// woken consumers can recycle (first-hop slack is lost).
	EGPW bool
	// SkewedSelect prioritizes non-speculative over GP-speculative requests
	// in the select arbiter (Sec. IV-D).
	SkewedSelect bool
	// Design picks the Operational or Illustrative RSE.
	Design RSEDesign
	// ThresholdTicks is the slack threshold of Sec. IV-C step 10: a consumer
	// issues into its producer's completion cycle only if the producer's
	// completion instant (sub-cycle fraction) is at most this many ticks —
	// i.e. only if at least TicksPerCycle-Threshold ticks of slack remain.
	// Tuned per application set via a design sweep (Sec. VI-C).
	ThresholdTicks int
	// WidthPrediction routes width slack through the data-width predictor;
	// when false every scalar op is scheduled at its full (conservative)
	// width and only opcode/type slack is recycled.
	WidthPrediction bool
	// DynamicThreshold enables the adaptive threshold controller the paper
	// sketches as future work in Sec. IV-C ("a simple but intelligent
	// dynamic mechanism can be used to increase or decrease this threshold
	// based on overall observed benefits"): ThresholdTicks becomes the
	// starting point and the controller walks it up when recycling is cheap
	// (low FU pressure) and down when 2-cycle holds congest the units.
	DynamicThreshold bool
}

// DefaultParams returns the paper's operating point for a clock: everything
// on, Operational design, threshold at 6/8 of the cycle (a producer
// completing later than tick 6 leaves too little slack to be worth a 2-cycle
// FU hold).
func DefaultParams(clock timing.Clock) Params {
	return Params{
		Recycle:         true,
		EGPW:            true,
		SkewedSelect:    true,
		Design:          Operational,
		ThresholdTicks:  clock.TicksPerCycle() * 3 / 4,
		WidthPrediction: true,
	}
}

// Validate checks internal consistency against a clock.
func (p Params) Validate(clock timing.Clock) error {
	if p.ThresholdTicks < 0 || p.ThresholdTicks > clock.TicksPerCycle() {
		return fmt.Errorf("core: threshold %d ticks outside [0,%d]", p.ThresholdTicks, clock.TicksPerCycle())
	}
	if !p.Recycle && p.EGPW {
		return fmt.Errorf("core: EGPW requires recycling")
	}
	return nil
}
