package core

import "encoding/json"

// SeqTracker accumulates the lengths of transparent sequences: maximal chains
// of operations in which each operation after the first began evaluating
// mid-cycle off its producer's transparent bypass. Fig. 11 reports the
// expected (length-weighted) sequence length, which lands at 4–6 operations
// in the paper.
type SeqTracker struct {
	hist map[int]uint64
}

// NewSeqTracker returns an empty tracker.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{hist: make(map[int]uint64)}
}

// Record logs one maximal transparent sequence of the given length (in
// operations, including the boundary-clocked head). Lengths below 2 are not
// transparent sequences and are ignored.
func (t *SeqTracker) Record(length int) {
	if length < 2 {
		return
	}
	t.hist[length]++
}

// Count returns the number of recorded sequences.
func (t *SeqTracker) Count() uint64 {
	var n uint64
	for _, c := range t.hist { //lint:allow simdeterminism order-independent: commutative sum
		n += c
	}
	return n
}

// MeanLength is the plain average sequence length.
func (t *SeqTracker) MeanLength() float64 {
	var n, sum uint64
	for l, c := range t.hist { //lint:allow simdeterminism order-independent: commutative sums
		n += c
		sum += uint64(l) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ExpectedLength is the length-weighted mean: the expected sequence length
// seen by a randomly chosen *operation* inside a transparent sequence. This
// is Fig. 11's "EV of transparent sequence length".
func (t *SeqTracker) ExpectedLength() float64 {
	var sum, sqSum uint64
	for l, c := range t.hist { //lint:allow simdeterminism order-independent: commutative sums
		sum += uint64(l) * c
		sqSum += uint64(l) * uint64(l) * c
	}
	if sum == 0 {
		return 0
	}
	return float64(sqSum) / float64(sum)
}

// Histogram returns a copy of the length histogram.
func (t *SeqTracker) Histogram() map[int]uint64 {
	out := make(map[int]uint64, len(t.hist))
	for l, c := range t.hist { //lint:allow simdeterminism order-independent: map copy
		out[l] = c
	}
	return out
}

// MarshalJSON serializes the tracker's histogram. encoding/json sorts the
// map keys, so identical trackers marshal to identical bytes — the property
// the content-addressed cell journal leans on — and integer keys and counts
// round-trip exactly.
func (t *SeqTracker) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.hist)
}

// UnmarshalJSON restores a tracker from its histogram; a journaled tracker
// round-trips bit-exactly, so Fig. 11's sequence statistics from a resumed
// cell match a fresh run's.
func (t *SeqTracker) UnmarshalJSON(data []byte) error {
	hist := make(map[int]uint64)
	if err := json.Unmarshal(data, &hist); err != nil {
		return err
	}
	t.hist = hist
	return nil
}

// Merge folds another tracker's counts into this one.
func (t *SeqTracker) Merge(other *SeqTracker) {
	for l, c := range other.hist { //lint:allow simdeterminism order-independent: commutative merge
		t.hist[l] += c
	}
}
