package harness

// Report is the machine-readable record of one evaluation run — the payload
// redsoc-bench writes as BENCH_report.json to seed the performance
// trajectory across PRs. Everything under Cells, ClassMeans and Thresholds
// is a pure function of the grid and therefore bit-identical across worker
// counts; Workers and WallSeconds describe the run that produced it and are
// excluded from any equality check.
type Report struct {
	Scale   string `json:"scale"`
	Workers int    `json:"workers"`
	// WallSeconds is the wall-clock time of the grid evaluation (not
	// deterministic; filled in by the caller).
	WallSeconds float64           `json:"wall_seconds"`
	Cells       []CellReport      `json:"cells"`
	ClassMeans  []ClassMeanReport `json:"class_means"`
	Thresholds  []ThresholdReport `json:"chosen_thresholds"`
}

// CellReport is one benchmark × core comparison.
type CellReport struct {
	Class            string  `json:"class"`
	Benchmark        string  `json:"benchmark"`
	Core             string  `json:"core"`
	Threshold        int     `json:"threshold_ticks"`
	Instructions     int64   `json:"instructions"`
	BaselineCycles   int64   `json:"baseline_cycles"`
	RedsocCycles     int64   `json:"redsoc_cycles"`
	MOSCycles        int64   `json:"mos_cycles"`
	LoadDelayCycles  int64   `json:"loaddelay_cycles"`
	SpecLSQCycles    int64   `json:"speclsq_cycles"`
	RedsocSpeedup    float64 `json:"redsoc_speedup"`
	TSSpeedup        float64 `json:"ts_speedup"`
	MOSSpeedup       float64 `json:"mos_speedup"`
	LoadDelaySpeedup float64 `json:"loaddelay_speedup"`
	SpecLSQSpeedup   float64 `json:"speclsq_speedup"`
	RecycledOps      int64   `json:"recycled_ops"`
}

// ClassMeanReport is one Fig. 13 class × core mean.
type ClassMeanReport struct {
	Class              string  `json:"class"`
	Core               string  `json:"core"`
	RedsocMeanSpeedupP float64 `json:"redsoc_mean_speedup_pct"`
}

// ThresholdReport is one Sec. VI-C sweep decision.
type ThresholdReport struct {
	Class          string `json:"class"`
	Core           string `json:"core"`
	ThresholdTicks int    `json:"threshold_ticks"`
}

// Report flattens the grid into its machine-readable record. Cells keep the
// grid's class → core → benchmark order; class means and thresholds follow
// the paper's reporting order, so the whole structure marshals
// deterministically.
func (g *Grid) Report() *Report {
	r := &Report{}
	coreOrder := g.coreOrder()
	for _, c := range g.Cells {
		r.Cells = append(r.Cells, CellReport{
			Class:            string(c.Benchmark.Class),
			Benchmark:        c.Benchmark.Name,
			Core:             c.Core,
			Threshold:        c.Threshold,
			Instructions:     c.Cmp.Baseline.Instructions,
			BaselineCycles:   c.Cmp.Baseline.Cycles,
			RedsocCycles:     c.Cmp.Redsoc.Cycles,
			MOSCycles:        c.Cmp.MOS.Cycles,
			LoadDelayCycles:  c.Cmp.LoadDelay.Cycles,
			SpecLSQCycles:    c.Cmp.SpecLSQ.Cycles,
			RedsocSpeedup:    c.Cmp.RedsocSpeedup(),
			TSSpeedup:        c.Cmp.TSSpeedup(),
			MOSSpeedup:       c.Cmp.MOSSpeedup(),
			LoadDelaySpeedup: c.Cmp.LoadDelaySpeedup(),
			SpecLSQSpeedup:   c.Cmp.SpecLSQSpeedup(),
			RecycledOps:      c.Cmp.Redsoc.RecycledOps,
		})
	}
	for _, class := range Classes() {
		for _, core := range coreOrder {
			if cells := g.CellsOf(class, core); len(cells) > 0 {
				r.ClassMeans = append(r.ClassMeans, ClassMeanReport{
					Class: string(class), Core: core,
					RedsocMeanSpeedupP: g.ClassMeanSpeedup(class, core),
				})
			}
			if th, ok := g.ChosenThreshold[class][core]; ok {
				r.Thresholds = append(r.Thresholds, ThresholdReport{
					Class: string(class), Core: core, ThresholdTicks: th,
				})
			}
		}
	}
	return r
}

// coreOrder lists the grid's cores in first-appearance order.
func (g *Grid) coreOrder() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range g.Cells {
		if !seen[c.Core] {
			seen[c.Core] = true
			out = append(out, c.Core)
		}
	}
	return out
}
