package harness

// The CI bench-regression gate. The repository commits the quick grid's
// exact per-cell cycle counts as .github/bench-baseline.json; the workflow
// re-runs the grid and fails on ANY drift. The simulator is deterministic,
// so exact matching is the right bar: a single-cycle change is a behavioral
// change that either updates the baseline deliberately (go run
// ./cmd/redsoc-bench -quick -update-baseline) or is a regression.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"redsoc/internal/obs"
)

// BaselineCell is the committed record of one benchmark × core cell: the
// exact cycle counts of the five simulated schedulers plus the recycled-op
// count (the paper's headline activity metric, and the most sensitive
// canary for scheduler drift).
type BaselineCell struct {
	BaselineCycles  int64 `json:"baseline_cycles"`
	RedsocCycles    int64 `json:"redsoc_cycles"`
	MOSCycles       int64 `json:"mos_cycles"`
	LoadDelayCycles int64 `json:"loaddelay_cycles"`
	SpecLSQCycles   int64 `json:"speclsq_cycles"`
	RecycledOps     int64 `json:"recycled_ops"`
}

// Baseline is the committed CI performance baseline. Cells is keyed
// "class/benchmark/core"; json's sorted map keys keep the file diff-stable.
type Baseline struct {
	Scale string                  `json:"scale"`
	Cells map[string]BaselineCell `json:"cells"`
}

// baselineKey names a cell in the committed baseline.
func baselineKey(c CellReport) string {
	return c.Class + "/" + c.Benchmark + "/" + c.Core
}

// BaselineOf extracts the committed baseline view of a report.
func BaselineOf(r *Report) *Baseline {
	b := &Baseline{Scale: r.Scale, Cells: map[string]BaselineCell{}}
	for _, c := range r.Cells {
		b.Cells[baselineKey(c)] = BaselineCell{
			BaselineCycles:  c.BaselineCycles,
			RedsocCycles:    c.RedsocCycles,
			MOSCycles:       c.MOSCycles,
			LoadDelayCycles: c.LoadDelayCycles,
			SpecLSQCycles:   c.SpecLSQCycles,
			RecycledOps:     c.RecycledOps,
		}
	}
	return b
}

// Check compares a fresh report against the committed baseline and returns an
// error naming every drifted, missing or unexpected cell (sorted), or nil
// when the report matches exactly.
func (b *Baseline) Check(r *Report) error {
	if r.Scale != b.Scale {
		return fmt.Errorf("baseline gate: report scale %q does not match baseline scale %q", r.Scale, b.Scale)
	}
	got := BaselineOf(r).Cells
	var drifts []string
	for key, want := range b.Cells {
		have, ok := got[key]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("%s: missing from report", key))
			continue
		}
		if have != want {
			drifts = append(drifts, fmt.Sprintf(
				"%s: cycles base %d->%d redsoc %d->%d mos %d->%d loaddelay %d->%d speclsq %d->%d recycled %d->%d",
				key, want.BaselineCycles, have.BaselineCycles,
				want.RedsocCycles, have.RedsocCycles,
				want.MOSCycles, have.MOSCycles,
				want.LoadDelayCycles, have.LoadDelayCycles,
				want.SpecLSQCycles, have.SpecLSQCycles,
				want.RecycledOps, have.RecycledOps))
		}
	}
	for key := range got {
		if _, ok := b.Cells[key]; !ok {
			drifts = append(drifts, fmt.Sprintf("%s: not in baseline (refresh it)", key))
		}
	}
	if len(drifts) == 0 {
		return nil
	}
	sort.Strings(drifts)
	return fmt.Errorf("baseline gate: %d cell(s) drifted:\n  %s", len(drifts), strings.Join(drifts, "\n  "))
}

// WriteBaseline marshals the baseline with stable formatting.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a committed baseline file.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("baseline gate: parse: %w", err)
	}
	return &b, nil
}

// MetricsSet flattens the grid into per-run metrics snapshots, keyed
// "class/benchmark/core/policy" — the deterministic machine-readable view
// redsoc-bench writes alongside the report.
func (g *Grid) MetricsSet(scale string) obs.MetricsSet {
	set := obs.MetricsSet{Scale: scale, Runs: map[string]obs.Metrics{}}
	for _, c := range g.Cells {
		prefix := string(c.Benchmark.Class) + "/" + c.Benchmark.Name + "/" + c.Core + "/"
		set.Runs[prefix+"baseline"] = c.Cmp.Baseline.Metrics(c.Benchmark.Name, c.Core, "baseline")
		set.Runs[prefix+"redsoc"] = c.Cmp.Redsoc.Metrics(c.Benchmark.Name, c.Core, "redsoc")
		set.Runs[prefix+"mos"] = c.Cmp.MOS.Metrics(c.Benchmark.Name, c.Core, "mos")
		set.Runs[prefix+"loaddelay"] = c.Cmp.LoadDelay.Metrics(c.Benchmark.Name, c.Core, "loaddelay")
		set.Runs[prefix+"speclsq"] = c.Cmp.SpecLSQ.Metrics(c.Benchmark.Name, c.Core, "speclsq")
	}
	return set
}
