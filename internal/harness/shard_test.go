package harness

import (
	"context"
	"sync/atomic"
	"testing"

	"redsoc/internal/campaign"
	"redsoc/internal/cellstore"
	"redsoc/internal/ooo"
)

// TestShardMergeEquivalence is the -shards 1 ≡ -shards N contract in
// process form: three shards each compute their slice of a sweep-enabled
// grid into one shared journal, then a full resume run merges the journal
// back into a complete grid. The merged report must be byte-identical to an
// unsharded run, and the merge must touch zero simulations — every sweep
// total and every cell is a journal hit.
func TestShardMergeEquivalence(t *testing.T) {
	dir := t.TempDir()
	bs := Benchmarks(Quick)[:3]
	cores := []ooo.Config{ooo.SmallConfig()}

	ref, err := Run(context.Background(), bs, cores,
		Options{SweepThreshold: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	const shards = 3
	ownedCells := 0
	for i := 0; i < shards; i++ {
		store, err := cellstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Run(context.Background(), bs, cores, Options{
			SweepThreshold: true, Workers: 2,
			Journal: store, Resume: true,
			Shard: campaign.Shard{Index: i, Count: shards},
		})
		store.Close()
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		if g.Shard != (campaign.Shard{Index: i, Count: shards}) {
			t.Fatalf("shard %d grid records shard %v", i, g.Shard)
		}
		ownedCells += len(g.Cells)
	}
	if ownedCells != len(bs)*len(cores) {
		t.Fatalf("shards computed %d cells total, want %d (an exact partition)",
			ownedCells, len(bs)*len(cores))
	}

	merge, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer merge.Close()
	merged, err := Run(context.Background(), bs, cores, Options{
		SweepThreshold: true, Workers: 2, Journal: merge, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := reportJSON(t, merged)
	if string(want) != string(got) {
		t.Fatalf("merged sharded grid diverges from the unsharded run:\n--- unsharded ---\n%s--- merged ---\n%s", want, got)
	}
	st := merge.Stats()
	nSweep := len(cores) * len(ThresholdCandidates) // the 3 quick SPEC benchmarks are one class
	nCells := len(bs) * len(cores)
	if int(st.Hits) != nSweep+nCells || st.Misses != 0 {
		t.Fatalf("merge stats = %+v, want %d hits (%d sweep + %d cells) and zero misses — the merge must not simulate",
			st, nSweep+nCells, nSweep, nCells)
	}
}

// TestShardMergeFullQuickGrid extends the shard-merge contract to the
// enlarged evaluation: all fifteen quick benchmarks × three cores, each cell
// running all six schedulers (baseline, redsoc, ts, mos, loaddelay,
// speclsq). Three shards partition the grid into a shared journal; the merge
// must reassemble it byte-identically to the unsharded run with every unit a
// journal hit.
func TestShardMergeFullQuickGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sharded grid: skipped in -short mode")
	}
	dir := t.TempDir()
	bs := Benchmarks(Quick)
	cores := Cores()

	ref, err := Run(context.Background(), bs, cores,
		Options{SweepThreshold: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	const shards = 3
	ownedCells := 0
	for i := 0; i < shards; i++ {
		store, err := cellstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Run(context.Background(), bs, cores, Options{
			SweepThreshold: true, Workers: 4,
			Journal: store, Resume: true,
			Shard: campaign.Shard{Index: i, Count: shards},
		})
		store.Close()
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		ownedCells += len(g.Cells)
	}
	if ownedCells != len(bs)*len(cores) {
		t.Fatalf("shards computed %d cells total, want %d (an exact partition)",
			ownedCells, len(bs)*len(cores))
	}

	merge, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer merge.Close()
	merged, err := Run(context.Background(), bs, cores, Options{
		SweepThreshold: true, Workers: 4, Journal: merge, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, merged); string(want) != string(got) {
		t.Fatalf("merged 15x3 grid diverges from the unsharded run:\n%s", firstDiff(string(want), string(got)))
	}
	classes := map[Class]bool{}
	for _, b := range bs {
		classes[b.Class] = true
	}
	nSweep := len(classes) * len(cores) * len(ThresholdCandidates)
	nCells := len(bs) * len(cores)
	if st := merge.Stats(); int(st.Hits) != nSweep+nCells || st.Misses != 0 {
		t.Fatalf("merge stats = %+v, want %d hits (%d sweep + %d cells) and zero misses",
			st, nSweep+nCells, nSweep, nCells)
	}
}

// TestShardSweepDedupe proves the threshold-sweep replication is served
// from the shared journal rather than recomputed: after shard 0 journals
// every sweep total, a later shard's sweep phase is all hits.
func TestShardSweepDedupe(t *testing.T) {
	dir := t.TempDir()
	bs := Benchmarks(Quick)[:2]
	cores := []ooo.Config{ooo.SmallConfig()}

	first, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), bs, cores, Options{
		SweepThreshold: true, Workers: 2, Journal: first, Resume: true,
		Shard: campaign.Shard{Index: 0, Count: 2},
	}); err != nil {
		t.Fatal(err)
	}
	first.Close()

	second, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	var sweepHits, cellHits atomic.Int64 // OnCell fires from worker goroutines
	if _, err := Run(context.Background(), bs, cores, Options{
		SweepThreshold: true, Workers: 2, Journal: second, Resume: true,
		Shard: campaign.Shard{Index: 1, Count: 2},
		OnCell: func(ev CellEvent) {
			if ev.Hit && ev.Kind == "sweep-total" {
				sweepHits.Add(1)
			}
			if ev.Hit && ev.Kind == "grid-cell" {
				cellHits.Add(1)
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	nSweep := len(cores) * len(ThresholdCandidates)
	if int(sweepHits.Load()) != nSweep {
		t.Fatalf("shard 1 served %d sweep totals from the journal, want all %d", sweepHits.Load(), nSweep)
	}
	if cellHits.Load() != 0 {
		t.Fatalf("shard 1 served %d of its own cells from the journal, want 0 (shard 0 owns the others)", cellHits.Load())
	}
}

// TestShardRequiresJournal pins the guard: a sharded run with no journal is
// an error, not a silently unmergeable partial grid.
func TestShardRequiresJournal(t *testing.T) {
	_, err := Run(context.Background(), Benchmarks(Quick)[:1], []ooo.Config{ooo.SmallConfig()},
		Options{Shard: campaign.Shard{Index: 0, Count: 2}})
	if err == nil {
		t.Fatal("sharded run without a journal succeeded, want an error")
	}
	_, err = Run(context.Background(), Benchmarks(Quick)[:1], []ooo.Config{ooo.SmallConfig()},
		Options{Shard: campaign.Shard{Index: 5, Count: 2}})
	if err == nil {
		t.Fatal("invalid shard coordinates accepted, want an error")
	}
}
