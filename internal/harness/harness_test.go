package harness

import (
	"context"
	"strings"
	"testing"

	"redsoc/internal/ooo"
)

func TestBenchmarkSetShape(t *testing.T) {
	for _, scale := range []Scale{Quick, Full} {
		bs := Benchmarks(scale)
		if len(bs) != 15 {
			t.Fatalf("scale %v: %d benchmarks, want 15", scale, len(bs))
		}
		perClass := map[Class]int{}
		for _, b := range bs {
			perClass[b.Class]++
			if b.Prog.Len() == 0 {
				t.Fatalf("%s: empty program", b.Name)
			}
		}
		for _, c := range Classes() {
			if perClass[c] != 5 {
				t.Fatalf("scale %v: class %s has %d benchmarks", scale, c, perClass[c])
			}
		}
	}
	// Full must be strictly larger than Quick.
	q, f := Benchmarks(Quick), Benchmarks(Full)
	var qn, fn int
	for i := range q {
		qn += q[i].Prog.Len()
		fn += f[i].Prog.Len()
	}
	if fn <= qn {
		t.Fatalf("full (%d instrs) must exceed quick (%d)", fn, qn)
	}
}

func TestStaticTables(t *testing.T) {
	for name, s := range map[string]string{
		"fig1":     Fig1Table().String(),
		"fig2":     Fig2Table().String(),
		"fig3":     Fig3Table().String(),
		"tableI":   TableITable().String(),
		"overhead": OverheadTable().String(),
	} {
		if len(strings.Split(strings.TrimSpace(s), "\n")) < 4 {
			t.Errorf("%s table suspiciously small:\n%s", name, s)
		}
	}
	// Fig. 1 must list all 23 ALU ops.
	if got := strings.Count(Fig1Table().String(), "\n"); got < 23 {
		t.Errorf("Fig. 1 rows = %d", got)
	}
	// Fig. 3 must show 14 buckets.
	if got := len(strings.Split(strings.TrimSpace(Fig3Table().String()), "\n")) - 3; got != 14 {
		t.Errorf("Fig. 3 lists %d buckets, want 14", got)
	}
}

// miniGrid runs a reduced grid (one benchmark per class, two cores) for fast
// structural tests.
func miniGrid(t *testing.T) *Grid {
	t.Helper()
	all := Benchmarks(Quick)
	var bs []Benchmark
	seen := map[Class]bool{}
	for _, b := range all {
		if !seen[b.Class] {
			seen[b.Class] = true
			bs = append(bs, b)
		}
	}
	g, err := Run(context.Background(), bs, []ooo.Config{ooo.BigConfig(), ooo.SmallConfig()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridTables(t *testing.T) {
	g := miniGrid(t)
	if len(g.Cells) != 6 {
		t.Fatalf("cells = %d, want 3 classes x 2 cores", len(g.Cells))
	}
	for name, s := range map[string]string{
		"fig10": g.Fig10Table().String(),
		"fig11": g.Fig11Table().String(),
		"fig12": g.Fig12Table().String(),
		"fig13": g.Fig13Table().String(),
		"fig14": g.Fig14Table().String(),
		"fig15": g.Fig15Table().String(),
		"power": g.PowerTable().String(),
	} {
		if len(s) < 50 {
			t.Errorf("%s table empty:\n%s", name, s)
		}
	}
	if got := g.CellsOf(ClassMiB, "Big"); len(got) != 1 {
		t.Fatalf("CellsOf filter broken: %d", len(got))
	}
	if g.ClassMeanSpeedup(ClassMiB, "Big") == 0 && g.ClassMeanSpeedup(ClassSPEC, "Big") == 0 {
		t.Error("speedups all zero — grid not exercising ReDSOC")
	}
}

func TestThresholdSweepChoosesCandidates(t *testing.T) {
	all := Benchmarks(Quick)
	var bs []Benchmark
	for _, b := range all {
		if b.Name == "crc" {
			bs = append(bs, b)
		}
	}
	g, err := Run(context.Background(), bs, []ooo.Config{ooo.SmallConfig()}, Options{SweepThreshold: true})
	if err != nil {
		t.Fatal(err)
	}
	th := g.ChosenThreshold[ClassMiB]["Small"]
	ok := false
	for _, c := range ThresholdCandidates {
		if th == c {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("chosen threshold %d not among candidates %v", th, ThresholdCandidates)
	}
	if g.Cells[0].Threshold != th {
		t.Fatal("cells must record the swept threshold")
	}
}

func TestPrecisionSweepTable(t *testing.T) {
	bs := Benchmarks(Quick)
	var prog = bs[0].Prog
	for _, b := range bs {
		if b.Name == "crc" {
			prog = b.Prog
		}
	}
	tab, err := PrecisionSweep(prog, ooo.SmallConfig(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "precision") || len(strings.Split(strings.TrimSpace(s), "\n")) != 5 {
		t.Fatalf("sweep table:\n%s", s)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	all := Benchmarks(Quick)
	var bench Benchmark
	for _, b := range all {
		if b.Name == "bitcnt" {
			bench = b
		}
	}
	// Corrupt the expectation: Run must fail.
	for addr := range bench.WantMem {
		bench.WantMem[addr] ^= 1
	}
	_, err := Run(context.Background(), []Benchmark{bench}, []ooo.Config{ooo.SmallConfig()}, Options{})
	if err == nil {
		t.Fatal("corrupted reference must fail verification")
	}
	if !strings.Contains(err.Error(), "mem[") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFindBenchmark(t *testing.T) {
	all := Benchmarks(Quick)
	b, err := FindBenchmark(all, "crc")
	if err != nil || b.Name != "crc" || b.Class != ClassMiB {
		t.Fatalf("FindBenchmark(crc) = %+v, %v", b, err)
	}
	if _, err := FindBenchmark(all, "nope"); err == nil {
		t.Fatal("unknown name must error")
	}
	// A duplicated name must be rejected, not silently resolved to either.
	dup := append(all, Benchmark{Class: ClassExtra, Name: "crc", Prog: all[0].Prog})
	if _, err := FindBenchmark(dup, "crc"); err == nil {
		t.Fatal("ambiguous name must error")
	}
}

// TestExtrasVerified runs the beyond-the-paper kernels under all four
// schedulers and checks both directions of reference verification: the
// genuine expectations pass, and a corrupted expectation is caught.
func TestExtrasVerified(t *testing.T) {
	extras := Extras()
	if len(extras) != 3 {
		t.Fatalf("extras = %d kernels, want sha256/dijkstra/qsort", len(extras))
	}
	cfg := ooo.SmallConfig()
	th := cfg.WithPolicy(ooo.PolicyRedsoc).Redsoc.ThresholdTicks
	for _, b := range extras {
		if len(b.WantMem) == 0 {
			t.Fatalf("%s carries no reference values", b.Name)
		}
		cmp, err := compareAt(context.Background(), cfg, b, th)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := verify(b, cmp); err != nil {
			t.Fatalf("%s failed its own reference: %v", b.Name, err)
		}
		for addr := range b.WantMem {
			b.WantMem[addr] ^= 1
		}
		if err := verify(b, cmp); err == nil {
			t.Fatalf("%s: corrupted reference passed verification", b.Name)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	all := Benchmarks(Quick)
	var bs []Benchmark
	for _, b := range all {
		if b.Name == "act" {
			bs = append(bs, b)
		}
	}
	var lines []string
	_, err := Run(context.Background(), bs, []ooo.Config{ooo.SmallConfig()}, Options{
		Progress: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "act") {
		t.Fatalf("progress lines = %v", lines)
	}
}
