package harness

import (
	"encoding/json"
	"fmt"

	"redsoc/internal/baseline"
	"redsoc/internal/cellstore"
	"redsoc/internal/isa"
	"redsoc/internal/ooo"
)

// Journaling: every unit of grid work — a Phase B cell (six scheduler runs
// compared and verified) and a Phase A sweep total (one class × core ×
// threshold-candidate speedup sum) — is content-addressed in the cell
// journal by a canonical fingerprint of everything that determines its
// outcome: the full core configuration, a digest of the workload (name,
// dynamic instruction stream, initial memory image and reference results),
// the policy set, and the slack threshold. The journaled value is the
// complete serialized outcome (for a cell, all of its ooo.Results), so a
// resumed cell is indistinguishable from a fresh one to every downstream
// consumer — report, figures, markdown, metrics — and the determinism gates
// make that an exact, not approximate, equivalence.

// cellPayloadVersion versions the harness's journaled encodings on top of
// cellstore.SchemaVersion; it participates in the fingerprint, so bumping
// it orphans (rather than misreads) old entries. Version 2 added the
// dynamic-delay policies (loaddelay, speclsq) to every cell.
const cellPayloadVersion = 2

// journaledCell is the serialized outcome of one grid cell.
type journaledCell struct {
	Version   int                  `json:"version"`
	Threshold int                  `json:"threshold_ticks"`
	Cmp       *baseline.Comparison `json:"comparison"`
}

// journaledTotal is the serialized outcome of one sweep task.
type journaledTotal struct {
	Version int     `json:"version"`
	Total   float64 `json:"total_speedup"`
}

// benchmarkDigest canonically fingerprints a workload: the program identity
// (name, every dynamic instruction, the initial memory image) plus the
// verification data, which participates in the cell outcome (a cell that
// fails verification journals nothing).
func benchmarkDigest(b Benchmark) []byte {
	return cellstore.DigestJSON(struct {
		Class   Class
		Name    string
		Prog    *isa.Program
		WantMem map[uint64]uint64
	}{b.Class, b.Name, b.Prog, b.WantMem})
}

// benchmarkDigests precomputes workload digests keyed by program pointer —
// each program appears in one cell per core, and hashing a 20k-instruction
// trace once instead of three times keeps journaling cheap.
func benchmarkDigests(benchmarks []Benchmark) map[*isa.Program][]byte {
	out := make(map[*isa.Program][]byte, len(benchmarks))
	for _, b := range benchmarks {
		out[b.Prog] = benchmarkDigest(b)
	}
	return out
}

// WorkloadDigest exposes the canonical workload fingerprint to other
// campaign drivers — the chaos campaign keys its journaled cells with it.
func WorkloadDigest(b Benchmark) []byte { return benchmarkDigest(b) }

// cellKey fingerprints one Phase B grid cell: the full core configuration,
// the workload digest, the policy set the cell compares, and the threshold
// the sweep chose.
func cellKey(cfg ooo.Config, digest []byte, threshold int) cellstore.Key {
	return cellstore.NewFingerprint("grid-cell").
		Field("payload-version", cellPayloadVersion).
		Field("core", cfg).
		Bytes("workload", digest).
		Field("policies", []string{"baseline", "redsoc", "mos", "loaddelay", "speclsq", "ts"}).
		Field("threshold", threshold).
		Key()
}

// sweepKey fingerprints one Phase A sweep task: the core, the ordered
// workload digests of the class, and the candidate threshold.
func sweepKey(cfg ooo.Config, class Class, digests [][]byte, candidate int) cellstore.Key {
	f := cellstore.NewFingerprint("sweep-total").
		Field("payload-version", cellPayloadVersion).
		Field("core", cfg).
		Field("class", class).
		Field("candidate", candidate)
	for i, d := range digests {
		f.Bytes(fmt.Sprintf("workload-%d", i), d)
	}
	return f.Key()
}

// encodeCell serializes a completed cell for the journal. encoding/json is
// canonical here (struct fields in declaration order, map keys sorted,
// shortest-round-trip floats), so identical cells produce identical bytes.
func encodeCell(c Cell) ([]byte, error) {
	return json.Marshal(journaledCell{Version: cellPayloadVersion, Threshold: c.Threshold, Cmp: c.Cmp})
}

// decodeCell rebuilds a Cell from its journaled payload. Any shape problem
// is an error, which the caller treats as a cache miss.
func decodeCell(data []byte, b Benchmark, core string) (Cell, error) {
	var v journaledCell
	if err := json.Unmarshal(data, &v); err != nil {
		return Cell{}, err
	}
	if v.Version != cellPayloadVersion {
		return Cell{}, fmt.Errorf("harness: journaled cell version %d, want %d", v.Version, cellPayloadVersion)
	}
	if v.Cmp == nil || v.Cmp.Baseline == nil || v.Cmp.Redsoc == nil || v.Cmp.MOS == nil ||
		v.Cmp.LoadDelay == nil || v.Cmp.SpecLSQ == nil {
		return Cell{}, fmt.Errorf("harness: journaled cell is incomplete")
	}
	return Cell{Benchmark: b, Core: core, Threshold: v.Threshold, Cmp: v.Cmp}, nil
}

// encodeTotal / decodeTotal serialize a sweep task's speedup sum.
func encodeTotal(total float64) ([]byte, error) {
	return json.Marshal(journaledTotal{Version: cellPayloadVersion, Total: total})
}

func decodeTotal(data []byte) (float64, error) {
	var v journaledTotal
	if err := json.Unmarshal(data, &v); err != nil {
		return 0, err
	}
	if v.Version != cellPayloadVersion {
		return 0, fmt.Errorf("harness: journaled total version %d, want %d", v.Version, cellPayloadVersion)
	}
	return v.Total, nil
}

// journalGet serves a journaled payload when resuming. A nil journal, a
// fresh (non-resume) run, a miss or an undecodable payload all mean "run
// the simulation"; decode failures count as misses by construction (the
// journal already verified the checksum, so a decode failure here means a
// foreign or stale payload shape).
func journalGet[T any](opts Options, key cellstore.Key, decode func([]byte) (T, error)) (T, bool) {
	var zero T
	if opts.Journal == nil || !opts.Resume {
		return zero, false
	}
	data, ok := opts.Journal.Get(key)
	if !ok {
		return zero, false
	}
	v, err := decode(data)
	if err != nil {
		return zero, false
	}
	return v, true
}

// journalPut journals a completed unit of work and logs it in the campaign
// manifest. Journal failures (full disk, permissions) never fail the
// campaign — the work is already done and correct; it just won't be
// resumable — but they are counted in the store's stats.
func journalPut(opts Options, key cellstore.Key, label string, payload []byte, err error) {
	if opts.Journal == nil || err != nil {
		return
	}
	if perr := opts.Journal.Put(key, payload); perr != nil {
		return
	}
	_ = opts.Journal.LogDone(key, label)
}
