package harness

import (
	"context"
	"strings"
	"testing"

	"redsoc/internal/obs"
)

// gateGrid runs a small two-benchmark, one-core grid (fast enough to run
// twice in the worker-invariance test).
func gateGrid(t *testing.T, workers int) *Grid {
	t.Helper()
	benchmarks := Benchmarks(Quick)[:2]
	cores := Cores()[:1]
	g, err := Run(context.Background(), benchmarks, cores, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func gateReport(t *testing.T, workers int) *Report {
	t.Helper()
	r := gateGrid(t, workers).Report()
	r.Scale = "quick"
	return r
}

func TestBaselineRoundTrip(t *testing.T) {
	r := gateReport(t, 1)
	b := BaselineOf(r)
	if len(b.Cells) != len(r.Cells) {
		t.Fatalf("baseline has %d cells, report has %d", len(b.Cells), len(r.Cells))
	}
	if err := b.Check(r); err != nil {
		t.Errorf("a report must match its own baseline: %v", err)
	}

	var sb strings.Builder
	if err := WriteBaseline(&sb, b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadBaseline(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Check(r); err != nil {
		t.Errorf("serialized baseline drifted: %v", err)
	}
	var again strings.Builder
	if err := WriteBaseline(&again, parsed); err != nil {
		t.Fatal(err)
	}
	if sb.String() != again.String() {
		t.Error("baseline serialization is not byte-stable")
	}
}

// TestBaselineDetectsOneCycleDrift perturbs a single cell by one cycle and
// demands the gate catches it by name.
func TestBaselineDetectsOneCycleDrift(t *testing.T) {
	r := gateReport(t, 1)
	b := BaselineOf(r)
	r.Cells[0].RedsocCycles++
	err := b.Check(r)
	if err == nil {
		t.Fatal("gate passed a one-cycle drift")
	}
	key := baselineKey(r.Cells[0])
	if !strings.Contains(err.Error(), key) {
		t.Errorf("drift report does not name the cell %q: %v", key, err)
	}
}

func TestBaselineDetectsShapeChanges(t *testing.T) {
	r := gateReport(t, 1)
	b := BaselineOf(r)

	extra := *r
	extra.Cells = append(append([]CellReport{}, r.Cells...), CellReport{Class: "X", Benchmark: "new", Core: "Big"})
	if err := b.Check(&extra); err == nil || !strings.Contains(err.Error(), "not in baseline") {
		t.Errorf("gate must flag cells missing from the baseline, got %v", err)
	}

	short := *r
	short.Cells = r.Cells[1:]
	if err := b.Check(&short); err == nil || !strings.Contains(err.Error(), "missing from report") {
		t.Errorf("gate must flag cells missing from the report, got %v", err)
	}

	full := *r
	full.Scale = "full"
	if err := b.Check(&full); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("gate must reject a scale mismatch, got %v", err)
	}
}

// TestMetricsSetWorkerInvariance renders the aggregated metrics snapshots of
// a 1-worker and a 4-worker grid and demands byte identity — the
// determinism contract -j relies on, extended to the obs metrics layer.
func TestMetricsSetWorkerInvariance(t *testing.T) {
	render := func(workers int) string {
		var sb strings.Builder
		if err := obs.WriteJSON(&sb, gateGrid(t, workers).MetricsSet("quick")); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial, parallel := render(1), render(4)
	if serial != parallel {
		t.Error("metrics snapshots differ between -j 1 and -j 4")
	}
	if !strings.Contains(serial, "/baseline") || !strings.Contains(serial, "/redsoc") || !strings.Contains(serial, "/mos") {
		t.Errorf("metrics set missing per-policy runs:\n%.400s", serial)
	}
}

func TestBenchmarkNamesSortedDeduped(t *testing.T) {
	names := BenchmarkNames([]Benchmark{{Name: "zeta"}, {Name: "alpha"}, {Name: "zeta"}, {Name: "mid"}})
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("got %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
}

func TestFindBenchmarkErrorListsNames(t *testing.T) {
	_, err := FindBenchmark([]Benchmark{{Name: "beta"}, {Name: "alpha"}}, "nosuch")
	if err == nil || !strings.Contains(err.Error(), "alpha, beta") {
		t.Errorf("unknown-benchmark error must list available names sorted, got %v", err)
	}
}
