package harness

import (
	"encoding/json"
	"testing"
)

// TestGridReport checks the machine-readable report against the grid it was
// flattened from: cell order, values, class means and thresholds, plus a
// JSON round trip (the BENCH_report.json contract).
func TestGridReport(t *testing.T) {
	g := miniGrid(t)
	r := g.Report()
	if len(r.Cells) != len(g.Cells) {
		t.Fatalf("report has %d cells, grid %d", len(r.Cells), len(g.Cells))
	}
	for i, c := range g.Cells {
		rc := r.Cells[i]
		if rc.Benchmark != c.Benchmark.Name || rc.Core != c.Core || rc.Class != string(c.Benchmark.Class) {
			t.Fatalf("cell %d identity %+v does not match grid cell %s/%s", i, rc, c.Benchmark.Name, c.Core)
		}
		if rc.BaselineCycles != c.Cmp.Baseline.Cycles || rc.RedsocCycles != c.Cmp.Redsoc.Cycles {
			t.Fatalf("cell %d cycles %+v do not match the comparison", i, rc)
		}
		if rc.RedsocSpeedup != c.Cmp.RedsocSpeedup() {
			t.Fatalf("cell %d speedup %v, want %v", i, rc.RedsocSpeedup, c.Cmp.RedsocSpeedup())
		}
		if rc.Threshold != c.Threshold || rc.Instructions == 0 {
			t.Fatalf("cell %d metadata %+v incomplete", i, rc)
		}
	}
	// miniGrid: 3 classes × 2 cores, one benchmark each.
	if len(r.ClassMeans) != 6 {
		t.Fatalf("class means = %d, want 6", len(r.ClassMeans))
	}
	if len(r.Thresholds) != 6 {
		t.Fatalf("thresholds = %d, want 6", len(r.Thresholds))
	}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(r.Cells) || back.Cells[0] != r.Cells[0] {
		t.Fatalf("JSON round trip lost cells: %+v", back.Cells)
	}

	// Two marshals of reports from the same grid must be byte-identical —
	// the determinism the bench-regression layer depends on.
	data2, err := json.Marshal(g.Report())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("Report marshaling is nondeterministic")
	}
}
