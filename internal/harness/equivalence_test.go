package harness

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"redsoc/internal/ooo"
)

// runSerialReference is the pre-campaign serial evaluation loop, kept
// verbatim as the golden reference: the parallel Run must reproduce its
// grid — cells, thresholds, progress lines and rendered tables — byte for
// byte at any worker count.
func runSerialReference(benchmarks []Benchmark, cores []ooo.Config, opts Options) (*Grid, error) {
	g := &Grid{ChosenThreshold: map[Class]map[string]int{}}
	byClass := map[Class][]Benchmark{}
	for _, b := range benchmarks {
		byClass[b.Class] = append(byClass[b.Class], b)
	}
	for _, class := range Classes() {
		bs := byClass[class]
		if len(bs) == 0 {
			continue
		}
		g.ChosenThreshold[class] = map[string]int{}
		for _, cfg := range cores {
			th, err := chooseThresholdSerial(bs, cfg, opts)
			if err != nil {
				return nil, err
			}
			g.ChosenThreshold[class][cfg.Name] = th
			for _, b := range bs {
				c := cfg
				cmp, err := compareAt(context.Background(), c, b, th)
				if err != nil {
					return nil, fmt.Errorf("harness: %s on %s: %w", b.Name, cfg.Name, err)
				}
				if err := verify(b, cmp); err != nil {
					return nil, err
				}
				g.Cells = append(g.Cells, Cell{Benchmark: b, Core: cfg.Name, Threshold: th, Cmp: cmp})
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("%-8s %-10s %-7s redsoc %+5.1f%%  ts %+5.1f%%  mos %+5.1f%%  loaddelay %+5.1f%%  speclsq %+5.1f%%",
						class, b.Name, cfg.Name,
						100*(cmp.RedsocSpeedup()-1), 100*(cmp.TSSpeedup()-1), 100*(cmp.MOSSpeedup()-1),
						100*(cmp.LoadDelaySpeedup()-1), 100*(cmp.SpecLSQSpeedup()-1)))
				}
			}
		}
	}
	return g, nil
}

func chooseThresholdSerial(bs []Benchmark, cfg ooo.Config, opts Options) (int, error) {
	if !opts.SweepThreshold {
		return cfg.WithPolicy(ooo.PolicyRedsoc).Redsoc.ThresholdTicks, nil
	}
	best, bestGain := ThresholdCandidates[0], -1.0
	for _, th := range ThresholdCandidates {
		total := 0.0
		for _, b := range bs {
			base, err := ooo.Run(cfg.WithPolicy(ooo.PolicyBaseline), b.Prog)
			if err != nil {
				return 0, err
			}
			rc := cfg.WithPolicy(ooo.PolicyRedsoc)
			rc.Redsoc.ThresholdTicks = th
			red, err := ooo.Run(rc, b.Prog)
			if err != nil {
				return 0, err
			}
			total += red.SpeedupOver(base)
		}
		if total > bestGain {
			best, bestGain = th, total
		}
	}
	return best, nil
}

// gridFingerprint renders everything an observer of a grid can see: the
// markdown record, every figure table, the chosen thresholds and the raw
// per-cell cycle counts of all six schedulers.
func gridFingerprint(t *testing.T, g *Grid) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	for _, tab := range []fmt.Stringer{
		g.Fig10Table(), g.Fig11Table(), g.Fig12Table(),
		g.Fig13Table(), g.Fig14Table(), g.Fig15Table(),
		g.ThresholdTable(), g.PowerTable(),
	} {
		buf.WriteString(tab.String())
	}
	for _, class := range Classes() {
		for _, core := range []string{"Big", "Medium", "Small"} {
			if th, ok := g.ChosenThreshold[class][core]; ok {
				fmt.Fprintf(&buf, "threshold %s/%s = %d\n", class, core, th)
			}
		}
	}
	for _, c := range g.Cells {
		fmt.Fprintf(&buf, "cell %s/%s/%s th=%d base=%d redsoc=%d mos=%d loaddelay=%d speclsq=%d ts=%.6f recycled=%d holds=%d viol=%d\n",
			c.Benchmark.Class, c.Benchmark.Name, c.Core, c.Threshold,
			c.Cmp.Baseline.Cycles, c.Cmp.Redsoc.Cycles, c.Cmp.MOS.Cycles,
			c.Cmp.LoadDelay.Cycles, c.Cmp.SpecLSQ.Cycles, c.Cmp.TSSpeedup(),
			c.Cmp.Redsoc.RecycledOps, c.Cmp.Redsoc.TwoCycleHolds, c.Cmp.Redsoc.TimingViolations)
	}
	return buf.String()
}

// TestParallelGridMatchesSerialGolden runs the full quick-scale evaluation —
// fifteen benchmarks × three cores with the Sec. VI-C threshold sweep — once
// through the pre-PR serial reference and once through the parallel campaign
// engine, and requires byte-identical output: cycles, counters, thresholds,
// markdown and figure tables, and the progress stream.
func TestParallelGridMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale grid: skipped in -short mode")
	}
	benchmarks := Benchmarks(Quick)
	cores := Cores()

	var serialLines []string
	serialOpts := Options{SweepThreshold: true, Progress: func(s string) { serialLines = append(serialLines, s) }}
	serial, err := runSerialReference(benchmarks, cores, serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	var parLines []string
	parOpts := Options{SweepThreshold: true, Workers: runtime.NumCPU(),
		Progress: func(s string) { parLines = append(parLines, s) }}
	par, err := Run(context.Background(), benchmarks, cores, parOpts)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := strings.Join(parLines, "\n"), strings.Join(serialLines, "\n"); got != want {
		t.Errorf("progress streams diverge:\nparallel:\n%s\nserial:\n%s", got, want)
	}
	sf, pf := gridFingerprint(t, serial), gridFingerprint(t, par)
	if sf != pf {
		t.Fatalf("parallel grid diverges from the serial reference:\n%s", firstDiff(sf, pf))
	}
}

// TestWorkerCountInvarianceMiniGrid is the cheap j-sweep: a one-benchmark-
// per-class grid on two cores must fingerprint identically at 1, 2 and many
// workers.
func TestWorkerCountInvarianceMiniGrid(t *testing.T) {
	all := Benchmarks(Quick)
	var bs []Benchmark
	seen := map[Class]bool{}
	for _, b := range all {
		if !seen[b.Class] {
			seen[b.Class] = true
			bs = append(bs, b)
		}
	}
	cores := []ooo.Config{ooo.BigConfig(), ooo.SmallConfig()}
	run := func(workers int) (string, string) {
		var lines []string
		g, err := Run(context.Background(), bs, cores, Options{SweepThreshold: true, Workers: workers,
			Progress: func(s string) { lines = append(lines, s) }})
		if err != nil {
			t.Fatal(err)
		}
		return gridFingerprint(t, g), strings.Join(lines, "\n")
	}
	refFP, refLines := run(1)
	for _, workers := range []int{2, 0} {
		fp, lines := run(workers)
		if fp != refFP {
			t.Fatalf("workers=%d grid diverges from workers=1:\n%s", workers, firstDiff(refFP, fp))
		}
		if lines != refLines {
			t.Fatalf("workers=%d progress diverges from workers=1:\n%s vs\n%s", workers, lines, refLines)
		}
	}
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
