package harness

import (
	"fmt"
	"math/rand"

	"redsoc/internal/adder"
	"redsoc/internal/isa"
	"redsoc/internal/ooo"
	"redsoc/internal/stats"
	"redsoc/internal/timing"
)

// PaperFig13Means are the class-mean speedups (percent) the paper reports in
// Fig. 13 for Big/Medium/Small.
var PaperFig13Means = map[Class]map[string]float64{
	ClassSPEC: {"Big": 12, "Medium": 8, "Small": 4},
	ClassMiB:  {"Big": 23, "Medium": 17, "Small": 9},
	ClassML:   {"Big": 13, "Medium": 9, "Small": 6},
}

// Fig1Table renders the per-opcode computation times of Fig. 1 (model ps at
// the 500 ps clock, plus their quantized tick/bucket view).
func Fig1Table() *stats.Table {
	clock := timing.MustClock(timing.DefaultPrecisionBits)
	lut := timing.NewLUT(clock)
	t := stats.NewTable("Fig. 1 — ALU computation times (modeled, 2 GHz)",
		"op", "class", "delay ps (w64)", "delay ps (w8)", "LUT bucket", "EX-TIME ticks")
	for _, op := range isa.ALUOps() {
		d64 := timing.OpDelayPS(op, isa.Width64)
		d8 := timing.OpDelayPS(op, isa.Width8)
		addr := timing.InstrAddress(op, isa.Width64, isa.Lane0)
		t.Row(op, op.Class(), d64, d8, timing.BucketOf(addr), int(lut.CompTicks(addr)))
	}
	return t
}

// Fig2Table renders the Kogge–Stone critical path versus effective operand
// width from the gate-level netlist (Fig. 2).
func Fig2Table() *stats.Table {
	t := stats.NewTable("Fig. 2 — KS-adder critical path vs effective width (gate units)",
		"effective width", "mean activated delay", "worst case (static)")
	ad := adder.New(64)
	rng := rand.New(rand.NewSource(2))
	worst := ad.WorstCaseDelay()
	for _, w := range []uint{2, 4, 8, 12, 16, 24, 32, 48, 63} {
		mask := uint64(1)<<w - 1
		sum := 0
		const n = 400
		for i := 0; i < n; i++ {
			sum += ad.Add(rng.Uint64()&mask, rng.Uint64()&mask).CriticalDelay
		}
		t.Row(int(w), fmt.Sprintf("%.1f", float64(sum)/n), worst)
	}
	return t
}

// TopologyTable compares carry-network topologies on the timed netlist:
// static worst case vs the activated path for narrow operands — data slack
// survives across topologies.
func TopologyTable() *stats.Table {
	t := stats.NewTable("Adder topologies — worst case vs activated path (gate units)",
		"topology", "gates", "worst case", "mean @ w4", "mean @ w16", "mean @ w63")
	rng := rand.New(rand.NewSource(4))
	avg := func(ad *adder.Adder, width uint) string {
		mask := uint64(1)<<width - 1
		sum := 0
		const n = 300
		for i := 0; i < n; i++ {
			sum += ad.Add(rng.Uint64()&mask, rng.Uint64()&mask).CriticalDelay
		}
		return fmt.Sprintf("%.1f", float64(sum)/n)
	}
	for _, row := range []struct {
		name string
		ad   *adder.Adder
	}{
		{"Kogge-Stone", adder.New(64)},
		{"Brent-Kung", adder.NewBrentKung(64)},
		{"ripple-carry", adder.NewRipple(64)},
	} {
		t.Row(row.name, row.ad.Gates(), row.ad.WorstCaseDelay(),
			avg(row.ad, 4), avg(row.ad, 16), avg(row.ad, 63))
	}
	return t
}

// Fig3Table renders the slack LUT: every reachable bucket with its
// computation time (Fig. 3 / Sec. II-B).
func Fig3Table() *stats.Table {
	clock := timing.MustClock(timing.DefaultPrecisionBits)
	lut := timing.NewLUT(clock)
	t := stats.NewTable("Fig. 3 — slack LUT (14 buckets, 3-bit EX-TIMEs)",
		"bucket", "worst delay ps", "EX-TIME ticks", "slack ticks")
	seen := map[timing.Bucket]bool{}
	for a := timing.Address(0); a < 32; a++ {
		b := timing.BucketOf(a)
		if seen[b] {
			continue
		}
		seen[b] = true
		t.Row(b, lut.BucketPS(b), int(lut.CompTicks(a)), int(lut.SlackTicks(a)))
	}
	return t
}

// TableITable renders the core configurations.
func TableITable() *stats.Table {
	t := stats.NewTable("Table I — processor baselines",
		"parameter", "Small", "Medium", "Big")
	s, m, b := ooo.SmallConfig(), ooo.MediumConfig(), ooo.BigConfig()
	t.Row("Front-End Width", s.FrontEndWidth, m.FrontEndWidth, b.FrontEndWidth)
	t.Row("ROB/LSQ/RSE",
		fmt.Sprintf("%d/%d/%d", s.ROBSize, s.LSQSize, s.RSESize),
		fmt.Sprintf("%d/%d/%d", m.ROBSize, m.LSQSize, m.RSESize),
		fmt.Sprintf("%d/%d/%d", b.ROBSize, b.LSQSize, b.RSESize))
	t.Row("ALU/SIMD/FP",
		fmt.Sprintf("%d/%d/%d", s.NumALU, s.NumSIMD, s.NumFP),
		fmt.Sprintf("%d/%d/%d", m.NumALU, m.NumSIMD, m.NumFP),
		fmt.Sprintf("%d/%d/%d", b.NumALU, b.NumSIMD, b.NumFP))
	t.Row("Mem ports", s.NumMemPorts, m.NumMemPorts, b.NumMemPorts)
	t.Row("L1/L2", "64kB/2MB w/ prefetch", "64kB/2MB w/ prefetch", "64kB/2MB w/ prefetch")
	return t
}

// Fig10Table renders the measured operation mix per benchmark.
func (g *Grid) Fig10Table() *stats.Table {
	t := stats.NewTable("Fig. 10 — benchmark operation characteristics (measured)",
		"benchmark", "MEM-HL", "MEM-LL", "SIMD", "OtherMulti", "ALU-LS", "ALU-HS")
	done := map[string]bool{}
	for _, c := range g.Cells {
		if done[c.Benchmark.Name] {
			continue
		}
		done[c.Benchmark.Name] = true
		m := c.Cmp.Baseline.Mix
		tot := float64(m.Total())
		t.Row(c.Benchmark.Name,
			stats.Pct(float64(m.MemHL)/tot), stats.Pct(float64(m.MemLL)/tot),
			stats.Pct(float64(m.SIMD)/tot), stats.Pct(float64(m.OtherMulti)/tot),
			stats.Pct(float64(m.ALULS)/tot), stats.Pct(float64(m.ALUHS)/tot))
	}
	return t
}

// Fig11Table renders the expected transparent-sequence length per class and
// core (paper: 4–6 ops).
func (g *Grid) Fig11Table() *stats.Table {
	t := stats.NewTable("Fig. 11 — EV of transparent sequence length",
		"class", "core", "EV length", "sequences", "paper")
	for _, class := range Classes() {
		for _, core := range []string{"Big", "Medium", "Small"} {
			cells := g.CellsOf(class, core)
			var evs []float64
			var n uint64
			for _, c := range cells {
				evs = append(evs, c.Cmp.Redsoc.Sequences.ExpectedLength())
				n += c.Cmp.Redsoc.Sequences.Count()
			}
			t.Row(string(class), core, stats.Mean(evs), n, "4-6")
		}
	}
	return t
}

// Fig12Table renders last-arrival (P/GP) tag misprediction rates.
func (g *Grid) Fig12Table() *stats.Table {
	t := stats.NewTable("Fig. 12 — P/GP last-arrival tag misprediction",
		"class", "core", "mispredict %", "paper")
	for _, class := range Classes() {
		for _, core := range []string{"Big", "Medium", "Small"} {
			var wrong, lookups uint64
			for _, c := range g.CellsOf(class, core) {
				wrong += c.Cmp.Redsoc.LastArrival.Mispredictions
				lookups += c.Cmp.Redsoc.LastArrival.Lookups
			}
			rate := 0.0
			if lookups > 0 {
				rate = float64(wrong) / float64(lookups)
			}
			t.Row(string(class), core, stats.Pct(rate), "~1-3%")
		}
	}
	return t
}

// Fig13Table renders per-benchmark speedups plus class means against the
// paper's means.
func (g *Grid) Fig13Table() *stats.Table {
	t := stats.NewTable("Fig. 13 — ReDSOC speedup over baseline",
		"benchmark", "Big", "Medium", "Small")
	names := g.benchmarkNames()
	for _, n := range names {
		row := []any{n}
		for _, core := range []string{"Big", "Medium", "Small"} {
			v := "-"
			for _, c := range g.CellsOf("", core) {
				if c.Benchmark.Name == n {
					v = fmt.Sprintf("%+.1f%%", 100*(c.Cmp.RedsocSpeedup()-1))
				}
			}
			row = append(row, v)
		}
		t.Row(row...)
	}
	for _, class := range Classes() {
		row := []any{string(class) + "-MEAN"}
		for _, core := range []string{"Big", "Medium", "Small"} {
			row = append(row, fmt.Sprintf("%+.1f%% (paper %+.0f%%)",
				g.ClassMeanSpeedup(class, core), PaperFig13Means[class][core]))
		}
		t.Row(row...)
	}
	return t
}

// Fig14Table renders FU-busy stall rates, baseline vs ReDSOC.
func (g *Grid) Fig14Table() *stats.Table {
	t := stats.NewTable("Fig. 14 — FU stalling rate (baseline vs ReDSOC)",
		"core:class", "baseline", "redsoc")
	for _, core := range []string{"Big", "Medium", "Small"} {
		for _, class := range Classes() {
			var b, r []float64
			for _, c := range g.CellsOf(class, core) {
				b = append(b, c.Cmp.Baseline.FUStallRate())
				r = append(r, c.Cmp.Redsoc.FUStallRate())
			}
			t.Row(fmt.Sprintf("%s:%s", core, class), stats.Pct(stats.Mean(b)), stats.Pct(stats.Mean(r)))
		}
	}
	return t
}

// Fig15Table renders the ReDSOC/TS/MOS comparison (class means per core).
func (g *Grid) Fig15Table() *stats.Table {
	t := stats.NewTable("Fig. 15 — comparison with other proposals (mean speedup)",
		"core:class", "ReDSOC", "TS", "MOS")
	for _, core := range []string{"Big", "Medium", "Small"} {
		for _, class := range Classes() {
			var rd, ts, mos []float64
			for _, c := range g.CellsOf(class, core) {
				rd = append(rd, 100*(c.Cmp.RedsocSpeedup()-1))
				ts = append(ts, 100*(c.Cmp.TSSpeedup()-1))
				mos = append(mos, 100*(c.Cmp.MOSSpeedup()-1))
			}
			t.Row(fmt.Sprintf("%s:%s", core, class),
				fmt.Sprintf("%+.1f%%", stats.Mean(rd)),
				fmt.Sprintf("%+.1f%%", stats.Mean(ts)),
				fmt.Sprintf("%+.1f%%", stats.Mean(mos)))
		}
	}
	return t
}

// PowerTable converts class-mean speedups into iso-performance power savings
// (Sec. VI-C).
func (g *Grid) PowerTable() *stats.Table {
	t := stats.NewTable("Sec. VI-C — iso-performance power savings (A57 V/F model)",
		"class", "core", "speedup", "power saving", "paper range")
	ranges := map[Class]string{ClassSPEC: "8-15%", ClassMiB: "12-36%", ClassML: "8-18%"}
	for _, class := range Classes() {
		for _, core := range []string{"Big", "Medium", "Small"} {
			sp := 1 + g.ClassMeanSpeedup(class, core)/100
			t.Row(string(class), core, fmt.Sprintf("%.3f", sp),
				stats.Pct(stats.PowerSavings(sp, timing.FrequencyGHz)), ranges[class])
		}
	}
	return t
}

// ThresholdTable reports the Sec. VI-C design-sweep outcome.
func (g *Grid) ThresholdTable() *stats.Table {
	t := stats.NewTable("Sec. VI-C — tuned slack threshold (ticks of 8)",
		"class", "Big", "Medium", "Small")
	for _, class := range Classes() {
		m := g.ChosenThreshold[class]
		if m == nil {
			continue
		}
		t.Row(string(class), m["Big"], m["Medium"], m["Small"])
	}
	return t
}

// PrecisionSweep runs one benchmark across slack-tracking precisions and
// reports speedup per precision (paper: saturates at 3 bits).
func PrecisionSweep(prog *isa.Program, cfg ooo.Config, bitsList []int) (*stats.Table, error) {
	t := stats.NewTable("Sec. V — slack precision sweep ("+prog.Name+", "+cfg.Name+")",
		"precision bits", "ticks/cycle", "speedup vs baseline")
	for _, bits := range bitsList {
		c := cfg
		c.PrecisionBits = bits
		base, err := ooo.Run(c.WithPolicy(ooo.PolicyBaseline), prog)
		if err != nil {
			return nil, err
		}
		red, err := ooo.Run(c.WithPolicy(ooo.PolicyRedsoc), prog)
		if err != nil {
			return nil, err
		}
		t.Row(bits, 1<<bits, fmt.Sprintf("%+.2f%%", 100*(red.SpeedupOver(base)-1)))
	}
	return t, nil
}

// OverheadTable renders the Sec. II-B / IV-E hardware cost accounting.
func OverheadTable() *stats.Table {
	t := stats.NewTable("Sec. II-B / IV-E — hardware overheads", "component", "cost")
	rse := stats.OperationalRSEOverhead()
	sel := stats.SkewedSelectOverhead()
	est := stats.SlackEstimationOverhead()
	t.Row("RSE extra bits (Operational)", fmt.Sprintf("%d bits + %d 3-bit adders", rse.ExtraBits, rse.Adders))
	t.Row("RSE area / energy", fmt.Sprintf("%.1f%% / %.1f%%", rse.AreaPct, rse.EnergyPct))
	t.Row("Skewed select delay", fmt.Sprintf("+%d ps on %d ps arbiter", sel.ExtraPS, sel.BaselinePS))
	t.Row("Slack LUT", fmt.Sprintf("%d x %d-bit entries", est.LUTEntries, est.LUTBitsPerEntry))
	t.Row("Width predictor state", fmt.Sprintf("%d bytes", est.PredictorBytes))
	t.Row("Estimation area / access energy", fmt.Sprintf("%.2f%% / %.2f%%", est.AreaPct, est.AccessEnergyPct))
	return t
}

func (g *Grid) benchmarkNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range g.Cells {
		if !seen[c.Benchmark.Name] {
			seen[c.Benchmark.Name] = true
			names = append(names, c.Benchmark.Name)
		}
	}
	return names
}
