package harness

import (
	"strings"
	"testing"
)

func TestWriteMarkdown(t *testing.T) {
	g := miniGrid(t)
	var sb strings.Builder
	if err := g.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"## Fig. 13", "## Fig. 15", "## Fig. 11 / Fig. 12 / Fig. 14",
		"## Sec. VI-C", "SPEC-MEAN", "MiBench-MEAN", "ML-MEAN",
		"(paper +23%)", "| Big:SPEC |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Every grid benchmark must appear.
	for _, n := range g.benchmarkNames() {
		if !strings.Contains(out, "| "+n+" |") {
			t.Errorf("markdown missing benchmark row %q", n)
		}
	}
}
