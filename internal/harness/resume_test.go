package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"redsoc/internal/campaign"
	"redsoc/internal/cellstore"
	"redsoc/internal/ooo"
)

// reportJSON canonicalizes a grid into comparable bytes: fixed scale and
// worker stamp, zero wall time (the one nondeterministic field).
func reportJSON(t *testing.T, g *Grid) []byte {
	t.Helper()
	r := g.Report()
	r.Scale = "resume-e2e"
	r.Workers = 2
	r.WallSeconds = 0
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestJournalResumeEquivalence runs a sweep-enabled grid fresh into a
// journal, then resumes it from that journal: the resumed grid must be
// bit-identical and must touch zero simulations — every sweep total and
// every cell is a journal hit.
func TestJournalResumeEquivalence(t *testing.T) {
	dir := t.TempDir()
	bs := Benchmarks(Quick)
	cores := []ooo.Config{ooo.MediumConfig()}

	fresh, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Run(context.Background(), bs, cores,
		Options{SweepThreshold: true, Workers: 2, Journal: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.Hits != 0 || st.Writes == 0 {
		t.Fatalf("fresh run stats = %+v, want write-only journaling", st)
	}
	fresh.Close()

	resumed, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	var stats campaign.Stats
	g2, err := Run(context.Background(), bs, cores,
		Options{SweepThreshold: true, Workers: 2, Journal: resumed, Resume: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	want, got := reportJSON(t, g1), reportJSON(t, g2)
	if string(want) != string(got) {
		t.Fatalf("resumed grid diverges from the fresh run:\n--- fresh ---\n%s--- resumed ---\n%s", want, got)
	}
	st := resumed.Stats()
	nSweep := len(Classes()) * len(cores) * len(ThresholdCandidates)
	nCells := len(bs) * len(cores)
	if int(st.Hits) != nSweep+nCells || st.Misses != 0 {
		t.Fatalf("resume stats = %+v, want %d hits (%d sweep + %d cells) and no misses",
			st, nSweep+nCells, nSweep, nCells)
	}
}

// TestJournalCorruptionFallsBackToSimulation corrupts one journaled value
// between the fresh run and the resume: the resume must re-simulate that
// cell (a miss, never wrong data) and still produce the identical grid.
func TestJournalCorruptionFallsBackToSimulation(t *testing.T) {
	dir := t.TempDir()
	bs := Benchmarks(Quick)[:3]
	cores := []ooo.Config{ooo.SmallConfig()}

	fresh, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Run(context.Background(), bs, cores, Options{Workers: 2, Journal: fresh})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Close()

	// Truncate one value file (any one — recs carry the keys).
	recs, err := cellstore.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	truncated := false
	for _, r := range recs {
		if r.Op == "done" {
			path := filepath.Join(dir, string(r.Key)+".cell")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			truncated = true
			break
		}
	}
	if !truncated {
		t.Fatal("no done record found to corrupt")
	}

	resumed, err := cellstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	g2, err := Run(context.Background(), bs, cores,
		Options{Workers: 2, Journal: resumed, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if want, got := reportJSON(t, g1), reportJSON(t, g2); string(want) != string(got) {
		t.Fatalf("grid diverged after corrupted-cell fallback:\n--- fresh ---\n%s--- resumed ---\n%s", want, got)
	}
	st := resumed.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || int(st.Hits) != len(bs)-1 {
		t.Fatalf("resume stats = %+v, want exactly the corrupted cell re-simulated", st)
	}
}

// TestCrashResumeEndToEnd is the tentpole's crash test: a subprocess runs
// the journaled grid and is SIGKILLed mid-campaign (no deferred cleanup, no
// manifest flush courtesy — the hard way), then a second subprocess resumes
// from the same journal. The resumed report must be byte-identical to an
// uninterrupted in-process run, and must have served at least one journal
// hit.
func TestCrashResumeEndToEnd(t *testing.T) {
	if os.Getenv("REDSOC_CRASH_DIR") != "" {
		t.Skip("helper invocation")
	}
	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")

	// The uninterrupted reference, in-process.
	ref, err := Run(context.Background(), Benchmarks(Quick), []ooo.Config{ooo.MediumConfig()},
		Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	child := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashResumeChild$", "-test.count=1")
		cmd.Env = append(os.Environ(), "REDSOC_CRASH_DIR="+dir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd
	}

	// Run 1: kill at roughly half the campaign, mid-write pressure and all.
	c1 := child()
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if n, err := cellstore.DoneCount(journalDir); err == nil && n >= 7 {
			break
		}
		if time.Now().After(deadline) {
			c1.Process.Kill()
			c1.Wait()
			t.Fatal("child never reached the kill point")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c1.Wait() // exit error expected: it was SIGKILLed

	killedAt, err := cellstore.DoneCount(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("killed child after %d journaled cells", killedAt)

	// Run 2: resume to completion.
	c2 := child()
	if err := c2.Run(); err != nil {
		t.Fatalf("resume child failed: %v", err)
	}

	got, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed report diverges from the uninterrupted run:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	statsData, err := os.ReadFile(filepath.Join(dir, "stats.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses int64
	if _, err := fmt.Sscanf(string(statsData), "hits=%d misses=%d", &hits, &misses); err != nil {
		t.Fatalf("bad stats file %q: %v", statsData, err)
	}
	if hits < 1 {
		t.Fatalf("resume served %d journal hits, want at least 1 (killed at %d cells)", hits, killedAt)
	}
}

// TestCrashResumeChild is TestCrashResumeEndToEnd's subprocess body: run the
// journaled quick grid on the medium core and write the canonical report.
// Skipped unless re-exec'd with REDSOC_CRASH_DIR set.
func TestCrashResumeChild(t *testing.T) {
	dir := os.Getenv("REDSOC_CRASH_DIR")
	if dir == "" {
		t.Skip("helper process for TestCrashResumeEndToEnd")
	}
	journal, err := cellstore.Open(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	g, err := Run(context.Background(), Benchmarks(Quick), []ooo.Config{ooo.MediumConfig()},
		Options{Workers: 2, Journal: journal, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	st := journal.Stats()
	stats := fmt.Sprintf("hits=%d misses=%d\n", st.Hits, st.Misses)
	if err := os.WriteFile(filepath.Join(dir, "stats.txt"), []byte(stats), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "report.json"), reportJSON(t, g), 0o644); err != nil {
		t.Fatal(err)
	}
}
