// Package harness drives the paper's full evaluation: it builds the fifteen
// benchmarks (five SPEC-calibrated synthetics, five MiBench kernels, five
// Table II ML kernels), runs them across the three Table I cores under every
// scheduler (baseline, ReDSOC, TS, MOS, loaddelay, speclsq), applies the
// per-application-class
// slack-threshold sweep of Sec. VI-C, and renders each of the paper's
// figures and tables as text (Fig. 1–3, Table I/II, Fig. 10–15, the
// precision sweep, the power conversion, and the overhead accounting).
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"redsoc/internal/baseline"
	"redsoc/internal/campaign"
	"redsoc/internal/cellstore"
	"redsoc/internal/isa"
	"redsoc/internal/ooo"
	"redsoc/internal/workload/extra"
	"redsoc/internal/workload/mibench"
	"redsoc/internal/workload/ml"
	"redsoc/internal/workload/spec"
)

// Class labels a benchmark suite, matching the paper's three groups.
type Class string

const (
	ClassSPEC Class = "SPEC"
	ClassMiB  Class = "MiBench"
	ClassML   Class = "ML"
)

// Classes lists the three suites in the paper's reporting order.
func Classes() []Class { return []Class{ClassSPEC, ClassMiB, ClassML} }

// Benchmark is one workload plus its verification data.
type Benchmark struct {
	Class Class
	Name  string
	Prog  *isa.Program
	// WantMem maps result addresses to required final values (empty for the
	// synthetic traces, which are verified by cross-scheduler equivalence).
	WantMem map[uint64]uint64
}

// Scale selects evaluation sizes: Quick for tests/benches, Full for the
// redsoc-bench command.
type Scale int

const (
	Quick Scale = iota
	Full
)

// Benchmarks builds all fifteen workloads at the given scale.
func Benchmarks(s Scale) []Benchmark {
	specN := 20000
	if s == Quick {
		specN = 5000
	}
	var out []Benchmark
	for _, p := range spec.Suite(specN) {
		out = append(out, Benchmark{Class: ClassSPEC, Name: p.Name, Prog: p})
	}
	mib := mibench.Suite()
	if s == Quick {
		mib = []mibench.Kernel{
			{Name: "corners", Build: func() (*isa.Program, mibench.Expected) { return mibench.Corners(20, 16, 11) }},
			{Name: "strsearch", Build: func() (*isa.Program, mibench.Expected) { return mibench.StrSearch(800, 12) }},
			{Name: "gsm", Build: func() (*isa.Program, mibench.Expected) { return mibench.GSM(150, 13) }},
			{Name: "crc", Build: func() (*isa.Program, mibench.Expected) { return mibench.CRC(600, 14) }},
			{Name: "bitcnt", Build: func() (*isa.Program, mibench.Expected) { return mibench.Bitcount(450, 15) }},
		}
	}
	for _, k := range mib {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassMiB, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	mlk := ml.Suite()
	if s == Quick {
		mlk = []ml.Kernel{
			{Name: "act", Build: func() (*isa.Program, ml.Expected) { return ml.Act(700, 21) }},
			{Name: "pool0", Build: func() (*isa.Program, ml.Expected) { return ml.Pool0(64, 32, 22) }},
			{Name: "conv", Build: func() (*isa.Program, ml.Expected) { return ml.Conv(48, 32, 23) }},
			{Name: "pool1", Build: func() (*isa.Program, ml.Expected) { return ml.Pool1(64, 32, 24) }},
			{Name: "softmax", Build: func() (*isa.Program, ml.Expected) { return ml.Softmax(250, 25) }},
		}
	}
	for _, k := range mlk {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassML, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	return out
}

// ClassExtra labels the beyond-the-paper kernels (sha256, dijkstra, qsort);
// they are not part of the Fig. 13 grid but are available to the tools.
const ClassExtra Class = "Extra"

// Extras returns the beyond-the-paper kernels.
func Extras() []Benchmark {
	var out []Benchmark
	for _, k := range extra.Suite() {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassExtra, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	return out
}

// FindBenchmark returns the benchmark with the given name. A missing name is
// an error, and so is a duplicated one: the tools used to scan with
// last-match-wins, which silently shadowed benchmarks when two suites reused
// a name.
func FindBenchmark(benchmarks []Benchmark, name string) (Benchmark, error) {
	var found Benchmark
	matches := 0
	for _, b := range benchmarks {
		if b.Name == name {
			found = b
			matches++
		}
	}
	switch matches {
	case 0:
		return Benchmark{}, fmt.Errorf("harness: unknown benchmark %q (available: %s)",
			name, strings.Join(BenchmarkNames(benchmarks), ", "))
	case 1:
		return found, nil
	default:
		return Benchmark{}, fmt.Errorf("harness: benchmark name %q is ambiguous: %d matches", name, matches)
	}
}

// BenchmarkNames returns the benchmarks' names, sorted and deduplicated —
// the stable listing error messages and tool usage text lean on.
func BenchmarkNames(benchmarks []Benchmark) []string {
	seen := map[string]bool{}
	var names []string
	for _, b := range benchmarks {
		if !seen[b.Name] {
			seen[b.Name] = true
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Cores returns the three Table I cores, Big first (the paper's ordering).
func Cores() []ooo.Config {
	return []ooo.Config{ooo.BigConfig(), ooo.MediumConfig(), ooo.SmallConfig()}
}

// Cell is the full comparison for one benchmark on one core, at the
// class-tuned slack threshold.
type Cell struct {
	Benchmark Benchmark
	Core      string
	Threshold int
	Cmp       *baseline.Comparison
}

// Grid holds the entire evaluation — or, for a sharded run, the slice of it
// this shard owns (Shard records which; a partial grid is journal fodder,
// not report material).
type Grid struct {
	Cells []Cell
	// ChosenThreshold[class][core] is the Sec. VI-C design-sweep result.
	ChosenThreshold map[Class]map[string]int
	// Shard is the shard that produced this grid (zero when unsharded).
	Shard campaign.Shard
}

// CellEvent reports one journal-keyed unit of grid work to Options.OnCell:
// which unit (Kind + Label), its content-addressed key (empty when no
// journal is armed), and whether the journal served it (Hit) or it was
// simulated. The serve layer streams these to clients and counts per-job
// cache hits with them.
type CellEvent struct {
	// Kind is "sweep-total", "grid-cell" or "chaos-cell".
	Kind  string
	Label string
	Key   cellstore.Key
	// Hit is true when the unit was served from the journal.
	Hit bool
}

// emitCell fans a completed unit of work to OnCell, if armed.
func emitCell(opts Options, ev CellEvent) {
	if opts.OnCell != nil {
		opts.OnCell(ev)
	}
}

// ThresholdCandidates is the Sec. VI-C design-sweep range.
var ThresholdCandidates = []int{4, 5, 6, 7}

// classCore is one (class, core) pair of the threshold-selection phase.
type classCore struct {
	class Class
	cfg   ooo.Config
}

// Options tunes a grid run.
type Options struct {
	// SweepThreshold enables the per-class × per-core threshold sweep; when
	// false the default (6/8 cycle) is used everywhere.
	SweepThreshold bool
	// Progress, if non-nil, receives one line per completed cell, always in
	// grid order regardless of the worker count.
	Progress func(string)
	// Workers bounds the campaign worker pool (0 = runtime.NumCPU). Every
	// cell simulation is independent and results are merged by task index,
	// so any worker count produces a bit-identical grid.
	Workers int

	// Journal, if non-nil, records every completed cell and sweep total in
	// the content-addressed cell journal as the grid runs; with Resume also
	// set, previously journaled work is served instead of re-simulated.
	// Determinism makes the substitution exact: a resumed grid is
	// bit-identical to an uninterrupted one.
	Journal *cellstore.Store
	// Resume serves journal hits. Without it the journal is write-only (a
	// fresh run that leaves a resumable trail behind).
	Resume bool

	// Shard restricts this process to its slice of the grid: only Phase B
	// cells the shard owns are simulated and journaled. The Sec. VI-C
	// threshold sweep is replicated in every shard — it is deterministic, so
	// every shard chooses identical thresholds, and with a shared journal
	// plus Resume most replicas are served from cache rather than re-run. A
	// sharded run requires Journal: its product is the journal (merged by a
	// later Resume run that reassembles the full grid by index), not the
	// partial grid it returns.
	Shard campaign.Shard

	// OnCell, if non-nil, receives one event per journal-keyed unit of work
	// (sweep total or grid cell) as it completes, reporting whether it was
	// served from the journal or simulated. Events fire from campaign worker
	// goroutines in completion order — OnCell must be safe for concurrent
	// use, and the order is operational telemetry, never part of a result.
	OnCell func(CellEvent)

	// CellTimeout bounds each cell attempt; Retries grants extra attempts
	// to cells that panicked or timed out (genuine simulation errors never
	// retry). Retried cells produce identical bytes — see campaign.Options.
	CellTimeout time.Duration
	Retries     int
	// StallAfter arms the hung-cell watchdog when OnStall is set: a cell
	// silent for longer than this is reported with its label and last
	// observed event. Zero with OnStall set defaults to one minute.
	StallAfter time.Duration
	OnStall    func(campaign.Stall)
	// Stats, if non-nil, receives the campaign resilience counters.
	Stats *campaign.Stats
}

// campaignOptions projects the grid options onto one campaign phase.
func campaignOptions[T any](opts Options, label func(int) string, onDone func(int, T)) campaign.Options[T] {
	stallAfter := time.Duration(0)
	if opts.OnStall != nil {
		if stallAfter = opts.StallAfter; stallAfter <= 0 {
			stallAfter = time.Minute
		}
	}
	return campaign.Options[T]{
		Workers:    opts.Workers,
		Label:      label,
		OnDone:     onDone,
		Timeout:    opts.CellTimeout,
		Retries:    opts.Retries,
		StallAfter: stallAfter,
		OnStall:    opts.OnStall,
		Stats:      opts.Stats,
	}
}

// Run executes the grid. The Sec. VI-C threshold sweep and the grid cells
// each run as a concurrent campaign: cells are simulated in parallel but
// appended to the grid — and reported through Progress — in the same
// class → core → benchmark order the serial evaluation used. ctx cancels
// in-flight scheduling (SIGINT in the CLIs lands here); with a journal
// armed, everything completed before the cancellation is already persisted
// and a -resume run picks up exactly where this one stopped.
func Run(ctx context.Context, benchmarks []Benchmark, cores []ooo.Config, opts Options) (*Grid, error) {
	if err := opts.Shard.Validate(); err != nil {
		return nil, err
	}
	if opts.Shard.Enabled() && opts.Journal == nil {
		return nil, fmt.Errorf("harness: shard %s requires a journal — a shard's product is its journaled cells", opts.Shard)
	}
	g := &Grid{ChosenThreshold: map[Class]map[string]int{}, Shard: opts.Shard}
	byClass := map[Class][]Benchmark{}
	for _, b := range benchmarks {
		byClass[b.Class] = append(byClass[b.Class], b)
	}
	var digests map[*isa.Program][]byte
	if opts.Journal != nil {
		digests = benchmarkDigests(benchmarks)
	}

	// Phase A: one threshold per (class, core), from the Sec. VI-C sweep.
	var pairs []classCore
	for _, class := range Classes() {
		if len(byClass[class]) == 0 {
			continue
		}
		g.ChosenThreshold[class] = map[string]int{}
		for _, cfg := range cores {
			pairs = append(pairs, classCore{class, cfg})
		}
	}
	thresholds, err := chooseThresholds(ctx, pairs, byClass, digests, opts)
	if err != nil {
		return nil, err
	}
	for i, pr := range pairs {
		g.ChosenThreshold[pr.class][pr.cfg.Name] = thresholds[i]
	}

	// Phase B: the grid cells, flattened in reporting order.
	type cellTask struct {
		class Class
		b     Benchmark
		cfg   ooo.Config
		th    int
	}
	var tasks []cellTask
	for i, pr := range pairs {
		for _, b := range byClass[pr.class] {
			tasks = append(tasks, cellTask{pr.class, b, pr.cfg, thresholds[i]})
		}
	}
	// A sharded run computes only its owned slice of the task list; the
	// owned→task index mapping keeps cell identity (keys, labels, journal
	// records) exactly what the unsharded run would use.
	owned := opts.Shard.Assign(len(tasks))
	if opts.Journal != nil {
		desc := "grid cells"
		if opts.Shard.Enabled() {
			desc = fmt.Sprintf("grid cells (shard %s)", opts.Shard)
		}
		_ = opts.Journal.LogCampaign(len(owned), desc)
	}
	label := func(j int) string { t := tasks[owned[j]]; return t.b.Name + "/" + t.cfg.Name }
	cells, err := campaign.Run(ctx, len(owned),
		campaignOptions(opts, label, func(j int, c Cell) {
			if opts.Progress != nil {
				t := tasks[owned[j]]
				opts.Progress(fmt.Sprintf("%-8s %-10s %-7s redsoc %+5.1f%%  ts %+5.1f%%  mos %+5.1f%%  loaddelay %+5.1f%%  speclsq %+5.1f%%",
					t.class, t.b.Name, t.cfg.Name,
					100*(c.Cmp.RedsocSpeedup()-1), 100*(c.Cmp.TSSpeedup()-1), 100*(c.Cmp.MOSSpeedup()-1),
					100*(c.Cmp.LoadDelaySpeedup()-1), 100*(c.Cmp.SpecLSQSpeedup()-1)))
			}
		}),
		func(ctx context.Context, j int) (Cell, error) {
			t := tasks[owned[j]]
			var key cellstore.Key
			if opts.Journal != nil {
				key = cellKey(t.cfg, digests[t.b.Prog], t.th)
				if c, ok := journalGet(opts, key, func(d []byte) (Cell, error) {
					return decodeCell(d, t.b, t.cfg.Name)
				}); ok {
					campaign.Heartbeat(ctx, label(j)+": served from journal")
					emitCell(opts, CellEvent{Kind: "grid-cell", Label: label(j), Key: key, Hit: true})
					return c, nil
				}
			}
			cmp, err := compareAt(ctx, t.cfg, t.b, t.th)
			if err != nil {
				return Cell{}, fmt.Errorf("harness: %s on %s: %w", t.b.Name, t.cfg.Name, err)
			}
			if err := verify(t.b, cmp); err != nil {
				return Cell{}, err
			}
			cell := Cell{Benchmark: t.b, Core: t.cfg.Name, Threshold: t.th, Cmp: cmp}
			if opts.Journal != nil {
				data, derr := encodeCell(cell)
				journalPut(opts, key, label(j), data, derr)
			}
			emitCell(opts, CellEvent{Kind: "grid-cell", Label: label(j), Key: key})
			return cell, nil
		})
	if err != nil {
		return nil, err
	}
	g.Cells = cells
	return g, nil
}

// chooseThresholds runs the Sec. VI-C design sweep for every (class, core)
// pair: pick the slack threshold that maximizes the class's summed speedup
// on that core. The (pair, candidate) grid is flattened into one campaign;
// the reduction walks candidates in declared order with a strict >, so ties
// resolve to the earliest candidate exactly as the serial sweep did.
func chooseThresholds(ctx context.Context, pairs []classCore, byClass map[Class][]Benchmark, digests map[*isa.Program][]byte, opts Options) ([]int, error) {
	out := make([]int, len(pairs))
	if !opts.SweepThreshold {
		for i, pr := range pairs {
			out[i] = pr.cfg.WithPolicy(ooo.PolicyRedsoc).Redsoc.ThresholdTicks
		}
		return out, nil
	}
	nc := len(ThresholdCandidates)
	if opts.Journal != nil {
		_ = opts.Journal.LogCampaign(len(pairs)*nc, "threshold sweep")
	}
	label := func(i int) string {
		pr := pairs[i/nc]
		return fmt.Sprintf("sweep %s/%s th=%d", pr.class, pr.cfg.Name, ThresholdCandidates[i%nc])
	}
	totals, err := campaign.Run(ctx, len(pairs)*nc,
		campaignOptions[float64](opts, label, nil),
		func(ctx context.Context, i int) (float64, error) {
			pr, th := pairs[i/nc], ThresholdCandidates[i%nc]
			var key cellstore.Key
			if opts.Journal != nil {
				class := byClass[pr.class]
				ds := make([][]byte, len(class))
				for j, b := range class {
					ds[j] = digests[b.Prog]
				}
				key = sweepKey(pr.cfg, pr.class, ds, th)
				if total, ok := journalGet(opts, key, decodeTotal); ok {
					campaign.Heartbeat(ctx, label(i)+": served from journal")
					emitCell(opts, CellEvent{Kind: "sweep-total", Label: label(i), Key: key, Hit: true})
					return total, nil
				}
			}
			total := 0.0
			for _, b := range byClass[pr.class] {
				campaign.Heartbeat(ctx, fmt.Sprintf("%s: simulating %s", label(i), b.Name))
				base, err := ooo.Run(pr.cfg.WithPolicy(ooo.PolicyBaseline), b.Prog)
				if err != nil {
					return 0, err
				}
				rc := pr.cfg.WithPolicy(ooo.PolicyRedsoc)
				rc.Redsoc.ThresholdTicks = th
				red, err := ooo.Run(rc, b.Prog)
				if err != nil {
					return 0, err
				}
				total += red.SpeedupOver(base)
			}
			if opts.Journal != nil {
				data, derr := encodeTotal(total)
				journalPut(opts, key, label(i), data, derr)
			}
			emitCell(opts, CellEvent{Kind: "sweep-total", Label: label(i), Key: key})
			return total, nil
		})
	if err != nil {
		return nil, err
	}
	for p := range pairs {
		best, bestGain := ThresholdCandidates[0], -1.0
		for c, th := range ThresholdCandidates {
			if total := totals[p*nc+c]; total > bestGain {
				best, bestGain = th, total
			}
		}
		out[p] = best
	}
	return out, nil
}

// compareAt runs the six schedulers with the given ReDSOC threshold. The
// heartbeats between runs feed the campaign watchdog: a stall report names
// which of the six simulations a hung cell last finished.
func compareAt(ctx context.Context, cfg ooo.Config, b Benchmark, threshold int) (*baseline.Comparison, error) {
	c := cfg
	cmp, err := baselineCompareWithThreshold(ctx, c, b.Prog, threshold)
	return cmp, err
}

func baselineCompareWithThreshold(ctx context.Context, cfg ooo.Config, prog *isa.Program, threshold int) (*baseline.Comparison, error) {
	beat := func(stage string, cycles int64) {
		campaign.Heartbeat(ctx, fmt.Sprintf("%s/%s: %s done (%d cycles)", prog.Name, cfg.Name, stage, cycles))
	}
	base, err := ooo.Run(cfg.WithPolicy(ooo.PolicyBaseline), prog)
	if err != nil {
		return nil, err
	}
	beat("baseline", base.Cycles)
	rc := cfg.WithPolicy(ooo.PolicyRedsoc)
	rc.Redsoc.ThresholdTicks = threshold
	red, err := ooo.Run(rc, prog)
	if err != nil {
		return nil, err
	}
	beat("redsoc", red.Cycles)
	mos, err := ooo.Run(cfg.WithPolicy(ooo.PolicyMOS), prog)
	if err != nil {
		return nil, err
	}
	beat("mos", mos.Cycles)
	ld, err := ooo.Run(cfg.WithPolicy(ooo.PolicyLoadDelay), prog)
	if err != nil {
		return nil, err
	}
	beat("loaddelay", ld.Cycles)
	sl, err := ooo.Run(cfg.WithPolicy(ooo.PolicySpecLSQ), prog)
	if err != nil {
		return nil, err
	}
	beat("speclsq", sl.Cycles)
	ts, err := baseline.RunTS(cfg, prog)
	if err != nil {
		return nil, err
	}
	if !red.ArchEqual(base) || !mos.ArchEqual(base) || !ld.ArchEqual(base) || !sl.ArchEqual(base) {
		return nil, fmt.Errorf("harness: architectural divergence on %s/%s", prog.Name, cfg.Name)
	}
	return &baseline.Comparison{
		Benchmark: prog.Name, Core: cfg.Name,
		Baseline: base, Redsoc: red, MOS: mos, LoadDelay: ld, SpecLSQ: sl, TS: ts,
	}, nil
}

// verify checks a kernel's reference results on every scheduler's final
// memory.
func verify(b Benchmark, cmp *baseline.Comparison) error {
	for addr, want := range b.WantMem {
		for _, res := range []*ooo.Result{cmp.Baseline, cmp.Redsoc, cmp.MOS, cmp.LoadDelay, cmp.SpecLSQ} {
			if got := res.FinalMem[addr]; got != want {
				return fmt.Errorf("harness: %s/%s/%s mem[%#x] = %#x, want %#x",
					b.Name, cmp.Core, res.Config.Policy, addr, got, want)
			}
		}
	}
	return nil
}

// CellsOf filters the grid by class and/or core ("" = all).
func (g *Grid) CellsOf(class Class, core string) []Cell {
	var out []Cell
	for _, c := range g.Cells {
		if (class == "" || c.Benchmark.Class == class) && (core == "" || c.Core == core) {
			out = append(out, c)
		}
	}
	return out
}

// ClassMeanSpeedup returns the arithmetic-mean ReDSOC speedup (in percent
// over baseline) for a class × core, as Fig. 13 reports.
func (g *Grid) ClassMeanSpeedup(class Class, core string) float64 {
	cells := g.CellsOf(class, core)
	if len(cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cells {
		sum += 100 * (c.Cmp.RedsocSpeedup() - 1)
	}
	return sum / float64(len(cells))
}
