// Package harness drives the paper's full evaluation: it builds the fifteen
// benchmarks (five SPEC-calibrated synthetics, five MiBench kernels, five
// Table II ML kernels), runs them across the three Table I cores under every
// scheduler (baseline, ReDSOC, TS, MOS), applies the per-application-class
// slack-threshold sweep of Sec. VI-C, and renders each of the paper's
// figures and tables as text (Fig. 1–3, Table I/II, Fig. 10–15, the
// precision sweep, the power conversion, and the overhead accounting).
package harness

import (
	"fmt"

	"redsoc/internal/baseline"
	"redsoc/internal/isa"
	"redsoc/internal/ooo"
	"redsoc/internal/workload/extra"
	"redsoc/internal/workload/mibench"
	"redsoc/internal/workload/ml"
	"redsoc/internal/workload/spec"
)

// Class labels a benchmark suite, matching the paper's three groups.
type Class string

const (
	ClassSPEC Class = "SPEC"
	ClassMiB  Class = "MiBench"
	ClassML   Class = "ML"
)

// Classes lists the three suites in the paper's reporting order.
func Classes() []Class { return []Class{ClassSPEC, ClassMiB, ClassML} }

// Benchmark is one workload plus its verification data.
type Benchmark struct {
	Class Class
	Name  string
	Prog  *isa.Program
	// WantMem maps result addresses to required final values (empty for the
	// synthetic traces, which are verified by cross-scheduler equivalence).
	WantMem map[uint64]uint64
}

// Scale selects evaluation sizes: Quick for tests/benches, Full for the
// redsoc-bench command.
type Scale int

const (
	Quick Scale = iota
	Full
)

// Benchmarks builds all fifteen workloads at the given scale.
func Benchmarks(s Scale) []Benchmark {
	specN := 20000
	if s == Quick {
		specN = 5000
	}
	var out []Benchmark
	for _, p := range spec.Suite(specN) {
		out = append(out, Benchmark{Class: ClassSPEC, Name: p.Name, Prog: p})
	}
	mib := mibench.Suite()
	if s == Quick {
		mib = []mibench.Kernel{
			{Name: "corners", Build: func() (*isa.Program, mibench.Expected) { return mibench.Corners(20, 16, 11) }},
			{Name: "strsearch", Build: func() (*isa.Program, mibench.Expected) { return mibench.StrSearch(800, 12) }},
			{Name: "gsm", Build: func() (*isa.Program, mibench.Expected) { return mibench.GSM(150, 13) }},
			{Name: "crc", Build: func() (*isa.Program, mibench.Expected) { return mibench.CRC(600, 14) }},
			{Name: "bitcnt", Build: func() (*isa.Program, mibench.Expected) { return mibench.Bitcount(450, 15) }},
		}
	}
	for _, k := range mib {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassMiB, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	mlk := ml.Suite()
	if s == Quick {
		mlk = []ml.Kernel{
			{Name: "act", Build: func() (*isa.Program, ml.Expected) { return ml.Act(700, 21) }},
			{Name: "pool0", Build: func() (*isa.Program, ml.Expected) { return ml.Pool0(64, 32, 22) }},
			{Name: "conv", Build: func() (*isa.Program, ml.Expected) { return ml.Conv(48, 32, 23) }},
			{Name: "pool1", Build: func() (*isa.Program, ml.Expected) { return ml.Pool1(64, 32, 24) }},
			{Name: "softmax", Build: func() (*isa.Program, ml.Expected) { return ml.Softmax(250, 25) }},
		}
	}
	for _, k := range mlk {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassML, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	return out
}

// ClassExtra labels the beyond-the-paper kernels (sha256, dijkstra, qsort);
// they are not part of the Fig. 13 grid but are available to the tools.
const ClassExtra Class = "Extra"

// Extras returns the beyond-the-paper kernels.
func Extras() []Benchmark {
	var out []Benchmark
	for _, k := range extra.Suite() {
		p, exp := k.Build()
		out = append(out, Benchmark{Class: ClassExtra, Name: k.Name, Prog: p, WantMem: exp.Mem})
	}
	return out
}

// FindBenchmark returns the benchmark with the given name. A missing name is
// an error, and so is a duplicated one: the tools used to scan with
// last-match-wins, which silently shadowed benchmarks when two suites reused
// a name.
func FindBenchmark(benchmarks []Benchmark, name string) (Benchmark, error) {
	var found Benchmark
	matches := 0
	for _, b := range benchmarks {
		if b.Name == name {
			found = b
			matches++
		}
	}
	switch matches {
	case 0:
		return Benchmark{}, fmt.Errorf("harness: unknown benchmark %q", name)
	case 1:
		return found, nil
	default:
		return Benchmark{}, fmt.Errorf("harness: benchmark name %q is ambiguous: %d matches", name, matches)
	}
}

// Cores returns the three Table I cores, Big first (the paper's ordering).
func Cores() []ooo.Config {
	return []ooo.Config{ooo.BigConfig(), ooo.MediumConfig(), ooo.SmallConfig()}
}

// Cell is the full comparison for one benchmark on one core, at the
// class-tuned slack threshold.
type Cell struct {
	Benchmark Benchmark
	Core      string
	Threshold int
	Cmp       *baseline.Comparison
}

// Grid holds the entire evaluation.
type Grid struct {
	Cells []Cell
	// ChosenThreshold[class][core] is the Sec. VI-C design-sweep result.
	ChosenThreshold map[Class]map[string]int
}

// ThresholdCandidates is the Sec. VI-C design-sweep range.
var ThresholdCandidates = []int{4, 5, 6, 7}

// Options tunes a grid run.
type Options struct {
	// SweepThreshold enables the per-class × per-core threshold sweep; when
	// false the default (6/8 cycle) is used everywhere.
	SweepThreshold bool
	// Progress, if non-nil, receives one line per completed cell.
	Progress func(string)
}

// Run executes the grid.
func Run(benchmarks []Benchmark, cores []ooo.Config, opts Options) (*Grid, error) {
	g := &Grid{ChosenThreshold: map[Class]map[string]int{}}
	byClass := map[Class][]Benchmark{}
	for _, b := range benchmarks {
		byClass[b.Class] = append(byClass[b.Class], b)
	}
	for _, class := range Classes() {
		bs := byClass[class]
		if len(bs) == 0 {
			continue
		}
		g.ChosenThreshold[class] = map[string]int{}
		for _, cfg := range cores {
			th, err := chooseThreshold(bs, cfg, opts)
			if err != nil {
				return nil, err
			}
			g.ChosenThreshold[class][cfg.Name] = th
			for _, b := range bs {
				c := cfg
				cmp, err := compareAt(c, b, th)
				if err != nil {
					return nil, fmt.Errorf("harness: %s on %s: %w", b.Name, cfg.Name, err)
				}
				if err := verify(b, cmp); err != nil {
					return nil, err
				}
				g.Cells = append(g.Cells, Cell{Benchmark: b, Core: cfg.Name, Threshold: th, Cmp: cmp})
				if opts.Progress != nil {
					opts.Progress(fmt.Sprintf("%-8s %-10s %-7s redsoc %+5.1f%%  ts %+5.1f%%  mos %+5.1f%%",
						class, b.Name, cfg.Name,
						100*(cmp.RedsocSpeedup()-1), 100*(cmp.TSSpeedup()-1), 100*(cmp.MOSSpeedup()-1)))
				}
			}
		}
	}
	return g, nil
}

// chooseThreshold runs the Sec. VI-C design sweep: pick the slack threshold
// that maximizes the class's mean speedup on this core.
func chooseThreshold(bs []Benchmark, cfg ooo.Config, opts Options) (int, error) {
	if !opts.SweepThreshold {
		return cfg.WithPolicy(ooo.PolicyRedsoc).Redsoc.ThresholdTicks, nil
	}
	best, bestGain := ThresholdCandidates[0], -1.0
	for _, th := range ThresholdCandidates {
		total := 0.0
		for _, b := range bs {
			base, err := ooo.Run(cfg.WithPolicy(ooo.PolicyBaseline), b.Prog)
			if err != nil {
				return 0, err
			}
			rc := cfg.WithPolicy(ooo.PolicyRedsoc)
			rc.Redsoc.ThresholdTicks = th
			red, err := ooo.Run(rc, b.Prog)
			if err != nil {
				return 0, err
			}
			total += red.SpeedupOver(base)
		}
		if total > bestGain {
			best, bestGain = th, total
		}
	}
	return best, nil
}

// compareAt runs the four schedulers with the given ReDSOC threshold.
func compareAt(cfg ooo.Config, b Benchmark, threshold int) (*baseline.Comparison, error) {
	c := cfg
	cmp, err := baselineCompareWithThreshold(c, b.Prog, threshold)
	return cmp, err
}

func baselineCompareWithThreshold(cfg ooo.Config, prog *isa.Program, threshold int) (*baseline.Comparison, error) {
	base, err := ooo.Run(cfg.WithPolicy(ooo.PolicyBaseline), prog)
	if err != nil {
		return nil, err
	}
	rc := cfg.WithPolicy(ooo.PolicyRedsoc)
	rc.Redsoc.ThresholdTicks = threshold
	red, err := ooo.Run(rc, prog)
	if err != nil {
		return nil, err
	}
	mos, err := ooo.Run(cfg.WithPolicy(ooo.PolicyMOS), prog)
	if err != nil {
		return nil, err
	}
	ts, err := baseline.RunTS(cfg, prog)
	if err != nil {
		return nil, err
	}
	if !red.ArchEqual(base) || !mos.ArchEqual(base) {
		return nil, fmt.Errorf("harness: architectural divergence on %s/%s", prog.Name, cfg.Name)
	}
	return &baseline.Comparison{
		Benchmark: prog.Name, Core: cfg.Name,
		Baseline: base, Redsoc: red, MOS: mos, TS: ts,
	}, nil
}

// verify checks a kernel's reference results on every scheduler's final
// memory.
func verify(b Benchmark, cmp *baseline.Comparison) error {
	for addr, want := range b.WantMem {
		for _, res := range []*ooo.Result{cmp.Baseline, cmp.Redsoc, cmp.MOS} {
			if got := res.FinalMem[addr]; got != want {
				return fmt.Errorf("harness: %s/%s/%s mem[%#x] = %#x, want %#x",
					b.Name, cmp.Core, res.Config.Policy, addr, got, want)
			}
		}
	}
	return nil
}

// CellsOf filters the grid by class and/or core ("" = all).
func (g *Grid) CellsOf(class Class, core string) []Cell {
	var out []Cell
	for _, c := range g.Cells {
		if (class == "" || c.Benchmark.Class == class) && (core == "" || c.Core == core) {
			out = append(out, c)
		}
	}
	return out
}

// ClassMeanSpeedup returns the arithmetic-mean ReDSOC speedup (in percent
// over baseline) for a class × core, as Fig. 13 reports.
func (g *Grid) ClassMeanSpeedup(class Class, core string) float64 {
	cells := g.CellsOf(class, core)
	if len(cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cells {
		sum += 100 * (c.Cmp.RedsocSpeedup() - 1)
	}
	return sum / float64(len(cells))
}
