package harness

import (
	"context"
	"sync"
	"testing"

	"redsoc/internal/ooo"
	"redsoc/internal/timing"
)

// The full Quick grid is expensive; share it across the claims tests.
var (
	claimsOnce sync.Once
	claimsGrid *Grid
	claimsErr  error
)

func quickGrid(t *testing.T) *Grid {
	t.Helper()
	if testing.Short() {
		t.Skip("grid run")
	}
	claimsOnce.Do(func() {
		claimsGrid, claimsErr = Run(context.Background(), Benchmarks(Quick), Cores(), Options{SweepThreshold: true})
	})
	if claimsErr != nil {
		t.Fatal(claimsErr)
	}
	return claimsGrid
}

// TestClaimOrderings pins the paper's qualitative claims (the reproduction's
// contract): suite ordering, core-size ordering, comparator ratios, FU-stall
// growth. If a calibration change breaks one of these, this fails loudly.
func TestClaimOrderings(t *testing.T) {
	g := quickGrid(t)

	// Claim 1: MiBench >> SPEC >> ML on every core (our ML under-reproduces;
	// the paper itself has MiBench on top).
	for _, core := range []string{"Big", "Medium", "Small"} {
		mib := g.ClassMeanSpeedup(ClassMiB, core)
		spec := g.ClassMeanSpeedup(ClassSPEC, core)
		if mib <= spec {
			t.Errorf("%s: MiBench mean (%+.1f%%) must exceed SPEC (%+.1f%%)", core, mib, spec)
		}
	}

	// Claim 2: gains grow with core size within each class (paper Sec. VI-C).
	for _, class := range []Class{ClassSPEC, ClassMiB} {
		big := g.ClassMeanSpeedup(class, "Big")
		small := g.ClassMeanSpeedup(class, "Small")
		if big <= small {
			t.Errorf("%s: Big (%+.1f%%) must beat Small (%+.1f%%)", class, big, small)
		}
	}

	// Claim 3 (Fig. 15): ReDSOC >= 2x TS, and clearly ahead of MOS (our MOS
	// reproduces somewhat stronger on SPEC than the paper's, so the pinned
	// MOS ratio is 1.5x there; see EXPERIMENTS.md).
	for _, class := range []Class{ClassSPEC, ClassMiB} {
		for _, core := range []string{"Big", "Medium"} {
			var rd, ts, mos float64
			cells := g.CellsOf(class, core)
			for _, c := range cells {
				rd += 100 * (c.Cmp.RedsocSpeedup() - 1)
				ts += 100 * (c.Cmp.TSSpeedup() - 1)
				mos += 100 * (c.Cmp.MOSSpeedup() - 1)
			}
			if rd < 2*ts || rd < 1.5*mos {
				t.Errorf("%s/%s: ReDSOC %+0.1f%% vs TS %+0.1f%% / MOS %+0.1f%% — want >= 2x TS, 1.5x MOS",
					class, core, rd/float64(len(cells)), ts/float64(len(cells)), mos/float64(len(cells)))
			}
		}
	}

	// Claim 4 (Fig. 14): FU stall rates rise under ReDSOC for the classes
	// that recycle heavily.
	var base, red float64
	for _, c := range g.CellsOf(ClassMiB, "") {
		base += c.Cmp.Baseline.FUStallRate()
		red += c.Cmp.Redsoc.FUStallRate()
	}
	if red <= base {
		t.Errorf("MiBench FU stalls must rise under recycling: %.3f -> %.3f", base, red)
	}

	// Claim 5: headline band — MiBench Big mean within the paper's overall
	// 5-25%% envelope.
	if m := g.ClassMeanSpeedup(ClassMiB, "Big"); m < 5 || m > 30 {
		t.Errorf("MiBench Big mean %+.1f%% outside the sanity band", m)
	}
}

// TestClaimPrecisionKnee pins the Sec. V claim: 3-bit slack precision
// captures the large majority of the asymptotic gain.
func TestClaimPrecisionKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	var probe Benchmark
	for _, b := range Benchmarks(Quick) {
		if b.Name == "bitcnt" {
			probe = b
		}
	}
	gain := func(bits int) float64 {
		cfg := ooo.BigConfig()
		cfg.PrecisionBits = bits
		base, err := ooo.Run(cfg.WithPolicy(ooo.PolicyBaseline), probe.Prog)
		if err != nil {
			t.Fatal(err)
		}
		red, err := ooo.Run(cfg.WithPolicy(ooo.PolicyRedsoc), probe.Prog)
		if err != nil {
			t.Fatal(err)
		}
		return red.SpeedupOver(base) - 1
	}
	g1, g3, g8 := gain(1), gain(3), gain(timing.MaxPrecisionBits)
	if g3 < 0.85*g8 {
		t.Errorf("3-bit gain %.3f captures only %.0f%% of the 8-bit gain %.3f",
			g3, 100*g3/g8, g8)
	}
	if g1 >= g3 {
		t.Errorf("1-bit precision (%.3f) must trail 3-bit (%.3f)", g1, g3)
	}
}
