package harness

import (
	"fmt"
	"io"
	"strings"

	"redsoc/internal/stats"
)

// WriteMarkdown renders the grid's paper-versus-measured record as a
// markdown document — the machine-generated core of EXPERIMENTS.md. The
// hand-written EXPERIMENTS.md at the repo root adds analysis; this function
// lets `redsoc-bench -md` regenerate the raw numbers section on demand.
func (g *Grid) WriteMarkdown(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# ReDSOC evaluation — generated results\n\n")
	p("Produced by the harness; deterministic for a given scale.\n\n")

	p("## Fig. 13 — ReDSOC speedup over baseline\n\n")
	p("| benchmark |")
	for _, core := range []string{"Big", "Medium", "Small"} {
		p(" %s |", core)
	}
	p("\n|---|---|---|---|\n")
	for _, name := range g.benchmarkNames() {
		p("| %s |", name)
		for _, core := range []string{"Big", "Medium", "Small"} {
			cell := "-"
			for _, c := range g.CellsOf("", core) {
				if c.Benchmark.Name == name {
					cell = fmt.Sprintf("%+.1f%%", 100*(c.Cmp.RedsocSpeedup()-1))
				}
			}
			p(" %s |", cell)
		}
		p("\n")
	}
	for _, class := range Classes() {
		p("| **%s-MEAN** |", class)
		for _, core := range []string{"Big", "Medium", "Small"} {
			p(" **%+.1f%%** (paper %+.0f%%) |",
				g.ClassMeanSpeedup(class, core), PaperFig13Means[class][core])
		}
		p("\n")
	}

	p("\n## Fig. 15 — comparison with TS and MOS (class means)\n\n")
	p("| core:class | ReDSOC | TS | MOS |\n|---|---|---|---|\n")
	for _, core := range []string{"Big", "Medium", "Small"} {
		for _, class := range Classes() {
			var rd, ts, mos []float64
			for _, c := range g.CellsOf(class, core) {
				rd = append(rd, 100*(c.Cmp.RedsocSpeedup()-1))
				ts = append(ts, 100*(c.Cmp.TSSpeedup()-1))
				mos = append(mos, 100*(c.Cmp.MOSSpeedup()-1))
			}
			p("| %s:%s | %+.1f%% | %+.1f%% | %+.1f%% |\n",
				core, class, stats.Mean(rd), stats.Mean(ts), stats.Mean(mos))
		}
	}

	p("\n## Fig. 11 / Fig. 12 / Fig. 14 — scheduler statistics\n\n")
	p("| class | core | seq EV | tag mispredict | FU stalls (base→redsoc) |\n|---|---|---|---|---|\n")
	for _, class := range Classes() {
		for _, core := range []string{"Big", "Medium", "Small"} {
			cells := g.CellsOf(class, core)
			if len(cells) == 0 {
				continue
			}
			var evs, sb, sr []float64
			var wrong, lookups uint64
			for _, c := range cells {
				evs = append(evs, c.Cmp.Redsoc.Sequences.ExpectedLength())
				sb = append(sb, c.Cmp.Baseline.FUStallRate())
				sr = append(sr, c.Cmp.Redsoc.FUStallRate())
				wrong += c.Cmp.Redsoc.LastArrival.Mispredictions
				lookups += c.Cmp.Redsoc.LastArrival.Lookups
			}
			rate := 0.0
			if lookups > 0 {
				rate = float64(wrong) / float64(lookups)
			}
			p("| %s | %s | %.2f | %s | %s → %s |\n",
				class, core, stats.Mean(evs), stats.Pct(rate),
				stats.Pct(stats.Mean(sb)), stats.Pct(stats.Mean(sr)))
		}
	}

	p("\n## Sec. VI-C — thresholds and power\n\n")
	p("| class | threshold (B/M/S) | power saving (B/M/S) | paper power range |\n|---|---|---|---|\n")
	ranges := map[Class]string{ClassSPEC: "8-15%", ClassMiB: "12-36%", ClassML: "8-18%"}
	for _, class := range Classes() {
		th := g.ChosenThreshold[class]
		if th == nil {
			continue
		}
		var pows []string
		for _, core := range []string{"Big", "Medium", "Small"} {
			sp := 1 + g.ClassMeanSpeedup(class, core)/100
			pows = append(pows, stats.Pct(stats.PowerSavings(sp, 2.0)))
		}
		p("| %s | %d/%d/%d | %s | %s |\n", class,
			th["Big"], th["Medium"], th["Small"], strings.Join(pows, " / "), ranges[class])
	}
	return nil
}
