package adder

// Alternative carry-network topologies on the same timed-gate
// infrastructure. The paper characterizes a Kogge–Stone adder (Fig. 2);
// these variants show how topology shifts the delay/area balance — and how
// the *data-dependent* activated path (the quantity ReDSOC recycles) varies
// far less across topologies than the static worst case does.

// NewBrentKung builds a Brent–Kung adder: about half the prefix cells of
// Kogge–Stone at roughly twice the tree depth.
func NewBrentKung(width int) *Adder {
	if width < 1 || width > 64 {
		panic("adder: width out of range [1,64]")
	}
	ad := &Adder{width: width}
	ad.aIn = make([]int32, width)
	ad.bIn = make([]int32, width)
	for i := 0; i < width; i++ {
		ad.aIn[i] = ad.add(gInput, -1, -1, -1)
		ad.bIn[i] = ad.add(gInput, -1, -1, -1)
	}
	p := make([]int32, width)
	g := make([]int32, width)
	for i := 0; i < width; i++ {
		p[i] = ad.add(gXor, ad.aIn[i], ad.bIn[i], -1)
		g[i] = ad.add(gAnd, ad.aIn[i], ad.bIn[i], -1)
	}
	// Up-sweep: combine at strides 1, 2, 4, ... (classic BK reduce).
	for off := 1; off < width; off <<= 1 {
		for i := 2*off - 1; i < width; i += 2 * off {
			g[i] = ad.add(gAndOr, g[i], p[i], g[i-off])
			p[i] = ad.add(gAnd, p[i], p[i-off], -1)
		}
	}
	// Down-sweep: fill in the intermediate prefixes.
	for off := largestPow2Below(width); off >= 1; off >>= 1 {
		for i := 3*off - 1; i < width; i += 2 * off {
			g[i] = ad.add(gAndOr, g[i], p[i], g[i-off])
			p[i] = ad.add(gAnd, p[i], p[i-off], -1)
		}
	}
	finishSum(ad, g)
	return ad
}

// NewRipple builds a ripple-carry adder: minimal area, delay linear in the
// carry distance.
func NewRipple(width int) *Adder {
	if width < 1 || width > 64 {
		panic("adder: width out of range [1,64]")
	}
	ad := &Adder{width: width}
	ad.aIn = make([]int32, width)
	ad.bIn = make([]int32, width)
	for i := 0; i < width; i++ {
		ad.aIn[i] = ad.add(gInput, -1, -1, -1)
		ad.bIn[i] = ad.add(gInput, -1, -1, -1)
	}
	g := make([]int32, width) // g[i] = carry OUT of bit i
	for i := 0; i < width; i++ {
		pi := ad.add(gXor, ad.aIn[i], ad.bIn[i], -1)
		gi := ad.add(gAnd, ad.aIn[i], ad.bIn[i], -1)
		if i == 0 {
			g[i] = gi
		} else {
			// carry = gi | (pi & carryIn)
			g[i] = ad.add(gAndOr, gi, pi, g[i-1])
		}
	}
	finishSum(ad, g)
	return ad
}

// finishSum wires the post-processing stage shared by the topologies: the
// sum XORs against the incoming carries plus the quiescent-state snapshot.
func finishSum(ad *Adder, carry []int32) {
	width := ad.width
	p0 := make([]int32, width)
	for i := 0; i < width; i++ {
		p0[i] = ad.add(gXor, ad.aIn[i], ad.bIn[i], -1)
	}
	ad.sum = make([]int32, width)
	ad.sum[0] = p0[0]
	for i := 1; i < width; i++ {
		ad.sum[i] = ad.add(gXor, p0[i], carry[i-1], -1)
	}
	ad.cout = carry[width-1]
	ad.settleQuiescent()
}

func largestPow2Below(n int) int {
	p := 1
	for p*2 < n {
		p *= 2
	}
	return p
}
