package adder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddCorrect16(t *testing.T) {
	ad := New(16)
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {0xFFFF, 1}, {0x8000, 0x8000}, {0x1234, 0x5678},
		{0xFFFF, 0xFFFF},
	}
	for _, c := range cases {
		got := ad.Add(c[0], c[1])
		want := (c[0] + c[1]) & 0xFFFF
		if got.Sum != want {
			t.Errorf("Add(%#x,%#x) = %#x, want %#x", c[0], c[1], got.Sum, want)
		}
		if got.CarryOut != (c[0]+c[1] > 0xFFFF) {
			t.Errorf("Add(%#x,%#x) carry = %v", c[0], c[1], got.CarryOut)
		}
	}
}

// Property: the 64-bit netlist matches the machine add for random operands.
func TestAddCorrect64Property(t *testing.T) {
	ad := New(64)
	f := func(a, b uint64) bool {
		r := ad.Add(a, b)
		return r.Sum == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every width's netlist matches masked addition.
func TestAddCorrectAllWidthsProperty(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 8, 13, 16, 24, 32, 48, 64} {
		ad := New(w)
		var mask uint64
		if w == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << w) - 1
		}
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			r := ad.Add(a, b)
			return r.Sum == (a+b)&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestDelayNeverExceedsWorstCase(t *testing.T) {
	ad := New(32)
	worst := ad.WorstCaseDelay()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() & 0xFFFFFFFF
		b := rng.Uint64() & 0xFFFFFFFF
		if d := ad.Add(a, b).CriticalDelay; d > worst {
			t.Fatalf("Add(%#x,%#x) delay %d exceeds worst case %d", a, b, d, worst)
		}
	}
}

// TestFig2NarrowOperandsFaster is the heart of Fig. 2: computations that only
// exercise the low-order bits settle measurably earlier than full-width ones.
func TestFig2NarrowOperandsFaster(t *testing.T) {
	ad := New(64)
	rng := rand.New(rand.NewSource(7))
	avg := func(width uint) float64 {
		mask := uint64(1)<<width - 1
		total := 0
		const n = 300
		for i := 0; i < n; i++ {
			total += ad.Add(rng.Uint64()&mask, rng.Uint64()&mask).CriticalDelay
		}
		return float64(total) / n
	}
	d4, d16, d63 := avg(4), avg(16), avg(63)
	if !(d4 < d16 && d16 < d63) {
		t.Errorf("average delay must grow with effective width: w4=%.1f w16=%.1f w63=%.1f", d4, d16, d63)
	}
	// The narrow case must cut at least two prefix levels' worth of delay.
	if d63-d4 < 2*DelayAndOr {
		t.Errorf("narrow-width saving too small: %.1f vs %.1f", d4, d63)
	}
}

func TestWorstCaseGrowsLogarithmically(t *testing.T) {
	prev := 0
	for _, w := range []int{8, 16, 32, 64} {
		d := New(w).WorstCaseDelay()
		if d <= prev {
			t.Errorf("worst-case delay must grow with width: %d-bit = %d, prev = %d", w, d, prev)
		}
		// Doubling the width adds one prefix level (2 gate units for the
		// fused AndOr cell), not a doubling of delay.
		if prev != 0 && d-prev > 3*DelayAndOr {
			t.Errorf("width doubling to %d added %d units, want ~1 prefix level", w, d-prev)
		}
		prev = d
	}
}

func TestZeroOperandsSettleFast(t *testing.T) {
	ad := New(64)
	z := ad.Add(0, 0)
	full := ad.Add(^uint64(0), 1)
	if z.CriticalDelay >= full.CriticalDelay {
		t.Errorf("0+0 (%d units) must settle before the full carry chain (%d units)",
			z.CriticalDelay, full.CriticalDelay)
	}
}

func TestOperandRangePanics(t *testing.T) {
	ad := New(8)
	defer func() {
		if recover() == nil {
			t.Error("out-of-width operand must panic")
		}
	}()
	ad.Add(0x100, 0)
}

func TestWidthRangePanics(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) must panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestGateCountScales(t *testing.T) {
	g16, g64 := New(16).Gates(), New(64).Gates()
	if g64 <= g16 {
		t.Error("64-bit netlist must be larger than 16-bit")
	}
	// Kogge–Stone is O(w log w); sanity bound the growth.
	if g64 > 8*g16 {
		t.Errorf("gate growth implausible: 16-bit=%d 64-bit=%d", g16, g64)
	}
}

func BenchmarkAdd64(b *testing.B) {
	ad := New(64)
	rng := rand.New(rand.NewSource(1))
	x, y := rng.Uint64(), rng.Uint64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad.Add(x, y)
	}
}
