package adder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBrentKungCorrectProperty(t *testing.T) {
	for _, w := range []int{1, 2, 7, 8, 16, 29, 32, 64} {
		ad := NewBrentKung(w)
		var mask uint64
		if w == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << w) - 1
		}
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			r := ad.Add(a, b)
			return r.Sum == (a+b)&mask && r.CarryOut == (w < 64 && a+b > mask || w == 64 && a+b < a)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("BK width %d: %v", w, err)
		}
	}
}

func TestRippleCorrectProperty(t *testing.T) {
	for _, w := range []int{1, 3, 8, 16, 33, 64} {
		ad := NewRipple(w)
		var mask uint64
		if w == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << w) - 1
		}
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			return ad.Add(a, b).Sum == (a+b)&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("ripple width %d: %v", w, err)
		}
	}
}

// Topology trade-offs: KS is the fastest and largest; BK trades depth for
// area; ripple is smallest with linear worst-case depth.
func TestTopologyTradeoffs(t *testing.T) {
	const w = 32
	ks, bk, rp := New(w), NewBrentKung(w), NewRipple(w)
	if !(ks.WorstCaseDelay() <= bk.WorstCaseDelay() && bk.WorstCaseDelay() < rp.WorstCaseDelay()) {
		t.Fatalf("worst-case delays: KS %d, BK %d, ripple %d — expected KS <= BK < ripple",
			ks.WorstCaseDelay(), bk.WorstCaseDelay(), rp.WorstCaseDelay())
	}
	if !(rp.Gates() < bk.Gates() && bk.Gates() < ks.Gates()) {
		t.Fatalf("areas: KS %d, BK %d, ripple %d gates — expected ripple < BK < KS",
			ks.Gates(), bk.Gates(), rp.Gates())
	}
}

// The data-slack observation across topologies: for narrow operands the
// ACTIVATED path of a ripple adder collapses toward the parallel-prefix
// adders' — data slack is a property of the computation more than of the
// network.
func TestNarrowOperandsConvergeAcrossTopologies(t *testing.T) {
	const w = 64
	ks, rp := New(w), NewRipple(w)
	rng := rand.New(rand.NewSource(5))
	avg := func(ad *Adder, width uint) float64 {
		mask := uint64(1)<<width - 1
		sum := 0
		const n = 300
		for i := 0; i < n; i++ {
			sum += ad.Add(rng.Uint64()&mask, rng.Uint64()&mask).CriticalDelay
		}
		return float64(sum) / n
	}
	narrowGap := avg(rp, 4) - avg(ks, 4)
	wideGap := float64(rp.WorstCaseDelay() - ks.WorstCaseDelay())
	if narrowGap >= wideGap/2 {
		t.Fatalf("narrow-operand gap (%.1f) should collapse well below the worst-case gap (%.1f)",
			narrowGap, wideGap)
	}
}

func TestTopologyWidthValidation(t *testing.T) {
	for _, fn := range []func(){func() { NewBrentKung(0) }, func() { NewRipple(65) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid width must panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBrentKungAdd64(b *testing.B) {
	ad := NewBrentKung(64)
	rng := rand.New(rand.NewSource(1))
	x, y := rng.Uint64(), rng.Uint64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad.Add(x, y)
	}
}
