// Package adder implements a gate-level Kogge–Stone parallel-prefix adder
// with value-dependent static timing: every gate output carries both its
// logic value and the instant that value stabilizes, honoring controlling
// values (an early 0 at an AND input settles the output early). This is the
// "gate-level C-model" characterization the paper cross-checks its synthesis
// numbers against (Sec. V), and it regenerates Fig. 2: the activated critical
// path grows roughly with log2 of the effective operand width.
package adder

import "fmt"

// Gate delays in abstract units. XOR cells are roughly twice the delay of a
// simple AND/OR cell in standard-cell libraries.
const (
	DelayAndOr = 1
	DelayXor   = 2
)

type gateKind uint8

const (
	gInput gateKind = iota
	gAnd
	gOr
	gXor
	gNot
	gAndOr // or(a, and(b, c)) — the fused G-propagation cell
)

type gate struct {
	kind    gateKind
	in      [3]int32 // indices into the netlist; unused entries are -1
	val     bool
	qval    bool // quiescent value: the gate's output with all-zero inputs
	arrival int
}

// Adder is a fixed-width Kogge–Stone adder netlist. It is not safe for
// concurrent use; create one per goroutine.
type Adder struct {
	width int
	gates []gate
	aIn   []int32 // input gate indices for operand a
	bIn   []int32
	sum   []int32 // sum bit output gate indices
	cout  int32
	order []int32 // topological evaluation order (gates are appended in order)
}

// New builds a Kogge–Stone adder of the given bit width (1..64).
func New(width int) *Adder {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("adder: width %d out of range [1,64]", width))
	}
	ad := &Adder{width: width}
	ad.aIn = make([]int32, width)
	ad.bIn = make([]int32, width)
	for i := 0; i < width; i++ {
		ad.aIn[i] = ad.add(gInput, -1, -1, -1)
		ad.bIn[i] = ad.add(gInput, -1, -1, -1)
	}
	// Pre-processing: p_i = a^b, g_i = a&b.
	p := make([]int32, width)
	g := make([]int32, width)
	for i := 0; i < width; i++ {
		p[i] = ad.add(gXor, ad.aIn[i], ad.bIn[i], -1)
		g[i] = ad.add(gAnd, ad.aIn[i], ad.bIn[i], -1)
	}
	// Kogge–Stone prefix levels: span doubles each level.
	for off := 1; off < width; off <<= 1 {
		np := make([]int32, width)
		ng := make([]int32, width)
		for i := 0; i < width; i++ {
			if i < off {
				np[i], ng[i] = p[i], g[i]
				continue
			}
			// g' = g | (p & g_prev); p' = p & p_prev
			ng[i] = ad.add(gAndOr, g[i], p[i], g[i-off])
			np[i] = ad.add(gAnd, p[i], p[i-off], -1)
		}
		p, g = np, ng
	}
	// Post-processing: carry into bit i is g[i-1] (cin = 0); sum_i = p0_i ^ c_i.
	p0 := make([]int32, width)
	for i := 0; i < width; i++ {
		p0[i] = ad.add(gXor, ad.aIn[i], ad.bIn[i], -1)
	}
	ad.sum = make([]int32, width)
	ad.sum[0] = p0[0]
	for i := 1; i < width; i++ {
		ad.sum[i] = ad.add(gXor, p0[i], g[i-1], -1)
	}
	ad.cout = g[width-1]
	ad.settleQuiescent()
	return ad
}

// settleQuiescent records every gate's output value under all-zero inputs.
// Timing is measured against this quiescent state: a gate whose output does
// not change when operands are applied contributes no transition, which is
// precisely why an inactive critical path leaves data slack.
func (ad *Adder) settleQuiescent() {
	gs := ad.gates
	for i := range gs {
		g := &gs[i]
		switch g.kind {
		case gInput:
			g.qval = false
		case gNot:
			g.qval = !gs[g.in[0]].qval
		case gAnd:
			g.qval = gs[g.in[0]].qval && gs[g.in[1]].qval
		case gOr:
			g.qval = gs[g.in[0]].qval || gs[g.in[1]].qval
		case gXor:
			g.qval = gs[g.in[0]].qval != gs[g.in[1]].qval
		case gAndOr:
			g.qval = gs[g.in[0]].qval || (gs[g.in[1]].qval && gs[g.in[2]].qval)
		}
	}
}

func (ad *Adder) add(k gateKind, a, b, c int32) int32 {
	ad.gates = append(ad.gates, gate{kind: k, in: [3]int32{a, b, c}})
	return int32(len(ad.gates) - 1)
}

// Width returns the adder's bit width.
func (ad *Adder) Width() int { return ad.width }

// Gates returns the netlist size (area proxy).
func (ad *Adder) Gates() int { return len(ad.gates) }

// Result bundles the outcome of a timed addition.
type Result struct {
	Sum uint64
	// CarryOut is the carry out of the most significant bit.
	CarryOut bool
	// CriticalDelay is the latest stabilization time over all sum outputs,
	// in gate-delay units.
	CriticalDelay int
}

// Add evaluates a+b through the netlist with value-dependent timing.
// Operands must fit in the adder's width.
func (ad *Adder) Add(a, b uint64) Result {
	if ad.width < 64 {
		mask := (uint64(1) << ad.width) - 1
		if a&mask != a || b&mask != b {
			panic(fmt.Sprintf("adder: operands %#x,%#x exceed width %d", a, b, ad.width)) //lint:allow panicpolicy audited invariant: the ALU masks operands to the adder width
		}
	}
	gs := ad.gates
	for i := 0; i < ad.width; i++ {
		gs[ad.aIn[i]].val = a>>uint(i)&1 == 1
		gs[ad.aIn[i]].arrival = 0
		gs[ad.bIn[i]].val = b>>uint(i)&1 == 1
		gs[ad.bIn[i]].arrival = 0
	}
	// Timing measures transition propagation from the quiescent (all-zero)
	// state: a gate whose output keeps its quiescent value produces no event
	// (arrival 0), and controlling values settle gates early. Glitches are
	// ignored (monotone settling), the usual assumption in slack analyses.
	for i := range gs {
		g := &gs[i]
		switch g.kind {
		case gInput:
			// set above
		case gNot:
			in := &gs[g.in[0]]
			g.val = !in.val
			g.arrival = transArrival(g, in.arrival+DelayAndOr)
		case gAnd:
			x, y := &gs[g.in[0]], &gs[g.in[1]]
			g.val = x.val && y.val
			g.arrival = transArrival(g,
				binArrival(x.val, x.arrival, y.val, y.arrival, false)+DelayAndOr)
		case gOr:
			x, y := &gs[g.in[0]], &gs[g.in[1]]
			g.val = x.val || y.val
			g.arrival = transArrival(g,
				binArrival(x.val, x.arrival, y.val, y.arrival, true)+DelayAndOr)
		case gXor:
			x, y := &gs[g.in[0]], &gs[g.in[1]]
			g.val = x.val != y.val
			g.arrival = transArrival(g, max(x.arrival, y.arrival)+DelayXor)
		case gAndOr:
			// out = gIn | (pIn & gPrev): evaluate the AND then the OR, each
			// with controlling-value timing.
			gi, pi, gp := &gs[g.in[0]], &gs[g.in[1]], &gs[g.in[2]]
			andVal := pi.val && gp.val
			andArr := binArrival(pi.val, pi.arrival, gp.val, gp.arrival, false) + DelayAndOr
			if !andVal && !(gs[g.in[1]].qval && gs[g.in[2]].qval) {
				andArr = 0 // the internal AND node never leaves quiescence
			}
			g.val = gi.val || andVal
			g.arrival = transArrival(g,
				binArrival(gi.val, gi.arrival, andVal, andArr, true)+DelayAndOr)
		}
	}
	var sum uint64
	crit := gs[ad.cout].arrival
	for i, idx := range ad.sum {
		g := &gs[idx]
		if g.val {
			sum |= 1 << uint(i)
		}
		if g.arrival > crit {
			crit = g.arrival
		}
	}
	return Result{Sum: sum, CarryOut: gs[ad.cout].val, CriticalDelay: crit}
}

// transArrival zeroes the arrival of a gate whose output never leaves its
// quiescent value: no transition, no event.
func transArrival(g *gate, arr int) int {
	if g.val == g.qval {
		return 0
	}
	return arr
}

// binArrival computes when a 2-input AND (controlling=false) or OR
// (controlling=true) output stabilizes: if either input holds the controlling
// value, the output settles when the earliest controlling input arrives;
// otherwise it waits for both.
func binArrival(xv bool, xa int, yv bool, ya int, controlling bool) int {
	xc := xv == controlling
	yc := yv == controlling
	switch {
	case xc && yc:
		return min(xa, ya)
	case xc:
		return xa
	case yc:
		return ya
	default:
		return max(xa, ya)
	}
}

// WorstCaseDelay returns the netlist's static worst-case delay in gate units:
// a plain topological longest-path pass with no knowledge of values, exactly
// the design-time constraint a synthesis tool reports. Every dynamic
// CriticalDelay is bounded by it.
func (ad *Adder) WorstCaseDelay() int {
	arr := make([]int, len(ad.gates))
	worst := 0
	for i := range ad.gates {
		g := &ad.gates[i]
		a := 0
		for _, in := range g.in {
			if in >= 0 && arr[in] > a {
				a = arr[in]
			}
		}
		switch g.kind {
		case gInput:
			arr[i] = 0
		case gXor:
			arr[i] = a + DelayXor
		case gAndOr:
			arr[i] = a + 2*DelayAndOr
		default:
			arr[i] = a + DelayAndOr
		}
	}
	for _, idx := range ad.sum {
		if arr[idx] > worst {
			worst = arr[idx]
		}
	}
	if arr[ad.cout] > worst {
		worst = arr[ad.cout]
	}
	return worst
}
